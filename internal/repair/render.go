package repair

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ir"
	"repro/internal/netaddr"
)

// textOp is one line-range rewrite of config B's source text:
// replace lines [start, end] (1-based, inclusive) with lines; end < start
// means "insert before start". Ops from independent edits compose when
// their ranges do not overlap; the patch layer applies them bottom-up.
type textOp struct {
	start, end int
	lines      []string
}

// overlap reports whether two ops touch conflicting line ranges. An
// insert occupies an empty interval, so it only conflicts when its point
// falls strictly inside the other op's replaced range; inserts at the
// same point compose in application order.
func (o textOp) overlap(p textOp) bool {
	aE := maxInt(o.end, o.start-1)
	bE := maxInt(p.end, p.start-1)
	return o.start <= bE && p.start <= aE
}

// renderEditOps renders one edit as text operations in config B's vendor
// dialect. ok == false means the edit is semantically valid IR but has no
// faithful rendering in that dialect (e.g. an inline route-filter range
// for IOS, a weight set-action for JunOS) — the search deprioritizes such
// candidates but may still report them as IR-level repairs.
func renderEditOps(cfg *ir.Config, e Edit) ([]textOp, bool) {
	switch cfg.Vendor {
	case ir.VendorCisco, ir.VendorArista:
		return ciscoOps(cfg, e)
	case ir.VendorJuniper:
		return juniperOps(cfg, e)
	default:
		return nil, false
	}
}

// spanOK reports whether a span faithfully carries its text.
func spanOK(s ir.TextSpan) bool {
	return s.StartLine > 0 && s.EndLine >= s.StartLine &&
		len(s.Lines) == s.EndLine-s.StartLine+1
}

func indentOf(s string) string {
	return s[:len(s)-len(strings.TrimLeft(s, " \t"))]
}

// spanRegion returns the contiguous line region covered by the given
// spans, failing when they are scattered (a rewrite would clobber
// unrelated text between them).
func spanRegion(spans []ir.TextSpan) (start, end int, indent string, ok bool) {
	var valid []ir.TextSpan
	for _, s := range spans {
		if !spanOK(s) {
			return 0, 0, "", false
		}
		valid = append(valid, s)
	}
	if len(valid) == 0 {
		return 0, 0, "", false
	}
	sort.Slice(valid, func(i, j int) bool { return valid[i].StartLine < valid[j].StartLine })
	start, end = valid[0].StartLine, valid[0].EndLine
	indent = indentOf(valid[0].Lines[0])
	for _, s := range valid[1:] {
		if s.StartLine != end+1 {
			return 0, 0, "", false
		}
		end = s.EndLine
	}
	return start, end, indent, true
}

// ---------------------------------------------------------------------------
// Cisco (IOS and Arista dialect)

func ciscoOps(cfg *ir.Config, e Edit) ([]textOp, bool) {
	switch e := e.(type) {
	case FlipClause:
		rm, cl, err := clauseAt(cfg, e.Map, e.Idx)
		if err != nil || !spanOK(cl.Span) {
			return nil, false
		}
		flipped := *cl
		if cl.Action == ir.ClausePermit {
			flipped.Action = ir.ClauseDeny
		} else if cl.Action == ir.ClauseDeny {
			flipped.Action = ir.ClausePermit
		} else {
			return nil, false
		}
		lines := append([]string(nil), cl.Span.Lines...)
		lines[0] = ciscoClauseHeader(rm.Name, &flipped)
		return []textOp{{start: cl.Span.StartLine, end: cl.Span.EndLine, lines: lines}}, true

	case SetDefault:
		rm := cfg.RouteMaps[e.Map]
		if rm == nil || !spanOK(rm.Span) {
			return nil, false
		}
		seq := 10
		if n := len(rm.Clauses); n > 0 {
			seq = rm.Clauses[n-1].Seq + 10
		}
		action := "deny"
		if e.Action == ir.Permit {
			action = "permit"
		}
		return []textOp{{start: rm.Span.EndLine + 1, end: rm.Span.EndLine,
			lines: []string{fmt.Sprintf("route-map %s %s %d", rm.Name, action, seq)}}}, true

	case DropClause:
		_, cl, err := clauseAt(cfg, e.Map, e.Idx)
		if err != nil || !spanOK(cl.Span) {
			return nil, false
		}
		return []textOp{{start: cl.Span.StartLine, end: cl.Span.EndLine}}, true

	case InsertClause:
		rm := cfg.RouteMaps[e.Map]
		if rm == nil {
			return nil, false
		}
		seq := ciscoInsertSeq(rm, e.At)
		cl := *e.Clause
		cl.Seq = seq
		block, ok := ciscoClauseBlock(rm.Name, &cl)
		if !ok {
			return nil, false
		}
		at, ok := ciscoInsertLine(rm, e.At)
		if !ok {
			return nil, false
		}
		ops := []textOp{{start: at, end: at - 1, lines: block}}
		defs, ok := ciscoBundleOps(cfg, rm, e.Needs)
		if !ok {
			return nil, false
		}
		return append(defs, ops...), true

	case MoveClause:
		rm, cl, err := clauseAt(cfg, e.Map, e.From)
		if err != nil || !spanOK(cl.Span) {
			return nil, false
		}
		// Insert the block verbatim before the clause that will follow it.
		next := e.To
		if e.To > e.From {
			next = e.To + 1
		}
		at, ok := ciscoInsertLine(rm, next)
		if !ok {
			return nil, false
		}
		return []textOp{
			{start: cl.Span.StartLine, end: cl.Span.EndLine},
			{start: at, end: at - 1, lines: cl.Span.Lines},
		}, true

	case ReplaceSets:
		rm, cl, err := clauseAt(cfg, e.Map, e.Idx)
		if err != nil || !spanOK(cl.Span) {
			return nil, false
		}
		mod := *cl
		mod.Sets = e.Sets
		block, ok := ciscoClauseBlock(rm.Name, &mod)
		if !ok {
			return nil, false
		}
		return []textOp{{start: cl.Span.StartLine, end: cl.Span.EndLine, lines: block}}, true

	case ReplaceMatches:
		rm, cl, err := clauseAt(cfg, e.Map, e.Idx)
		if err != nil || !spanOK(cl.Span) {
			return nil, false
		}
		mod := *cl
		mod.Matches = e.Matches
		block, ok := ciscoClauseBlock(rm.Name, &mod)
		if !ok {
			return nil, false
		}
		defs, ok := ciscoBundleOps(cfg, rm, e.Needs)
		if !ok {
			return nil, false
		}
		return append(defs, textOp{start: cl.Span.StartLine, end: cl.Span.EndLine, lines: block}), true

	case ReplacePrefixList:
		pl := cfg.PrefixLists[e.List]
		if pl == nil {
			return nil, false
		}
		start, end, _, ok := spanRegion(entrySpans(len(pl.Entries), func(i int) ir.TextSpan { return pl.Entries[i].Span }))
		if !ok {
			return nil, false
		}
		lines := ciscoPrefixListLines(e.List, e.Entries)
		return []textOp{{start: start, end: end, lines: lines}}, true

	case ReplacePrefixEntry:
		pl := cfg.PrefixLists[e.List]
		if pl == nil || e.Idx < 0 || e.Idx >= len(pl.Entries) || !spanOK(pl.Entries[e.Idx].Span) {
			return nil, false
		}
		sp := pl.Entries[e.Idx].Span
		en := e.Entry
		if en.Seq == 0 {
			en.Seq = pl.Entries[e.Idx].Seq
		}
		return []textOp{{start: sp.StartLine, end: sp.EndLine,
			lines: []string{ciscoPrefixEntryLine(e.List, en)}}}, true

	case ReplaceCommunityList:
		cl := cfg.CommunityLists[e.List]
		if cl == nil {
			return nil, false
		}
		start, end, _, ok := spanRegion(entrySpans(len(cl.Entries), func(i int) ir.TextSpan { return cl.Entries[i].Span }))
		if !ok {
			return nil, false
		}
		lines, ok := ciscoCommunityListLines(e.List, e.Entries)
		if !ok {
			return nil, false
		}
		return []textOp{{start: start, end: end, lines: lines}}, true

	case ReplaceASPathList:
		al := cfg.ASPathLists[e.List]
		if al == nil {
			return nil, false
		}
		start, end, _, ok := spanRegion(entrySpans(len(al.Entries), func(i int) ir.TextSpan { return al.Entries[i].Span }))
		if !ok {
			return nil, false
		}
		lines := make([]string, len(e.Entries))
		for i, en := range e.Entries {
			lines[i] = fmt.Sprintf("ip as-path access-list %s %s %s", e.List, ciscoAction(en.Action), en.Regex)
		}
		return []textOp{{start: start, end: end, lines: lines}}, true
	}
	return nil, false
}

func entrySpans(n int, at func(int) ir.TextSpan) []ir.TextSpan {
	out := make([]ir.TextSpan, n)
	for i := range out {
		out[i] = at(i)
	}
	return out
}

func ciscoAction(a ir.Action) string {
	if a == ir.Permit {
		return "permit"
	}
	return "deny"
}

func ciscoClauseHeader(mapName string, cl *ir.RouteMapClause) string {
	action := "permit"
	if cl.Action == ir.ClauseDeny {
		action = "deny"
	}
	return fmt.Sprintf("route-map %s %s %d", mapName, action, cl.Seq)
}

// ciscoClauseBlock renders a full clause block from IR.
func ciscoClauseBlock(mapName string, cl *ir.RouteMapClause) ([]string, bool) {
	lines := []string{ciscoClauseHeader(mapName, cl)}
	for _, m := range cl.Matches {
		l, ok := ciscoMatchLine(m)
		if !ok {
			return nil, false
		}
		lines = append(lines, " "+l)
	}
	for _, s := range cl.Sets {
		l, ok := ciscoSetLine(s)
		if !ok {
			return nil, false
		}
		lines = append(lines, " "+l)
	}
	if cl.Action == ir.ClauseFallthrough {
		lines = append(lines, " continue")
	}
	return lines, true
}

func ciscoMatchLine(m ir.Match) (string, bool) {
	switch m := m.(type) {
	case ir.MatchPrefixList:
		return "match ip address prefix-list " + strings.Join(m.Lists, " "), true
	case ir.MatchCommunity:
		return "match community " + strings.Join(m.Lists, " "), true
	case ir.MatchASPath:
		return "match as-path " + strings.Join(m.Lists, " "), true
	case ir.MatchMED:
		return fmt.Sprintf("match metric %d", m.Value), true
	case ir.MatchTag:
		return fmt.Sprintf("match tag %d", m.Value), true
	case ir.MatchProtocol:
		parts := make([]string, len(m.Protocols))
		for i, p := range m.Protocols {
			parts[i] = p.String()
		}
		return "match source-protocol " + strings.Join(parts, " "), true
	case ir.MatchNextHop:
		for _, n := range m.Lists {
			if strings.HasPrefix(n, "__nh_") {
				return "", false // synthetic JunOS next-hop lists have no IOS list
			}
		}
		return "match ip next-hop prefix-list " + strings.Join(m.Lists, " "), true
	}
	// MatchPrefixRanges / MatchPrefixListFilter: no IOS syntax.
	return "", false
}

func ciscoSetLine(s ir.SetAction) (string, bool) {
	switch s := s.(type) {
	case ir.SetLocalPref:
		return fmt.Sprintf("set local-preference %d", s.Value), true
	case ir.SetMED:
		return fmt.Sprintf("set metric %d", s.Value), true
	case ir.SetWeight:
		return fmt.Sprintf("set weight %d", s.Value), true
	case ir.SetTag:
		return fmt.Sprintf("set tag %d", s.Value), true
	case ir.SetCommunities:
		line := "set community " + strings.Join(s.Communities, " ")
		if s.Additive {
			line += " additive"
		}
		return line, true
	case ir.DeleteCommunity:
		return fmt.Sprintf("set comm-list %s delete", s.List), true
	case ir.SetNextHop:
		return "set ip next-hop " + s.Addr.String(), true
	case ir.SetASPathPrepend:
		parts := make([]string, len(s.ASNs))
		for i, a := range s.ASNs {
			parts[i] = fmt.Sprintf("%d", a)
		}
		return "set as-path prepend " + strings.Join(parts, " "), true
	}
	return "", false
}

func ciscoPrefixEntryLine(list string, e ir.PrefixListEntry) string {
	line := fmt.Sprintf("ip prefix-list %s", list)
	if e.Seq > 0 {
		line += fmt.Sprintf(" seq %d", e.Seq)
	}
	line += fmt.Sprintf(" %s %s", ciscoAction(e.Action), e.Range.Prefix)
	plen := e.Range.Prefix.Len
	switch {
	case e.Range.Lo == plen && e.Range.Hi == plen:
		// exact
	case e.Range.Lo == plen:
		line += fmt.Sprintf(" le %d", e.Range.Hi)
	case e.Range.Hi == 32:
		line += fmt.Sprintf(" ge %d", e.Range.Lo)
	default:
		line += fmt.Sprintf(" ge %d le %d", e.Range.Lo, e.Range.Hi)
	}
	return line
}

func ciscoPrefixListLines(list string, entries []ir.PrefixListEntry) []string {
	lines := make([]string, len(entries))
	for i, e := range entries {
		if e.Seq == 0 {
			e.Seq = (i + 1) * 5
		}
		lines[i] = ciscoPrefixEntryLine(list, e)
	}
	return lines
}

func ciscoCommunityListLines(list string, entries []ir.CommunityListEntry) ([]string, bool) {
	var lines []string
	for _, e := range entries {
		regex := false
		for _, m := range e.Conjuncts {
			if m.Regex != "" {
				regex = true
			}
		}
		if regex {
			if len(e.Conjuncts) != 1 {
				return nil, false // IOS expanded lists take one regex per line
			}
			lines = append(lines, fmt.Sprintf("ip community-list expanded %s %s %s",
				list, ciscoAction(e.Action), e.Conjuncts[0].Regex))
			continue
		}
		parts := make([]string, len(e.Conjuncts))
		for i, m := range e.Conjuncts {
			parts[i] = m.Literal
		}
		lines = append(lines, fmt.Sprintf("ip community-list standard %s %s %s",
			list, ciscoAction(e.Action), strings.Join(parts, " ")))
	}
	return lines, true
}

// ciscoInsertSeq picks a cosmetic sequence number for an inserted clause
// (IOS file order governs evaluation; the number just needs to look sane).
func ciscoInsertSeq(rm *ir.RouteMap, at int) int {
	if len(rm.Clauses) == 0 {
		return 10
	}
	if at >= len(rm.Clauses) {
		return rm.Clauses[len(rm.Clauses)-1].Seq + 10
	}
	if at == 0 {
		return maxInt(1, rm.Clauses[0].Seq/2)
	}
	return rm.Clauses[at-1].Seq + 1
}

func ciscoInsertLine(rm *ir.RouteMap, at int) (int, bool) {
	if at < len(rm.Clauses) {
		if !spanOK(rm.Clauses[at].Span) {
			return 0, false
		}
		return rm.Clauses[at].Span.StartLine, true
	}
	if n := len(rm.Clauses); n > 0 && spanOK(rm.Clauses[n-1].Span) {
		return rm.Clauses[n-1].Span.EndLine + 1, true
	}
	if spanOK(rm.Span) {
		return rm.Span.EndLine + 1, true
	}
	return 0, false
}

// ciscoBundleOps renders donor list definitions ahead of the route map
// that needs them.
func ciscoBundleOps(cfg *ir.Config, rm *ir.RouteMap, b ListBundle) ([]textOp, bool) {
	if b.empty() {
		return nil, true
	}
	if !spanOK(rm.Span) {
		return nil, false
	}
	var lines []string
	for _, pl := range b.Prefix {
		if cfg.PrefixLists[pl.Name] != nil {
			continue
		}
		lines = append(lines, ciscoPrefixListLines(pl.Name, pl.Entries)...)
	}
	for _, cl := range b.Community {
		if cfg.CommunityLists[cl.Name] != nil {
			continue
		}
		ls, ok := ciscoCommunityListLines(cl.Name, cl.Entries)
		if !ok {
			return nil, false
		}
		lines = append(lines, ls...)
	}
	for _, al := range b.ASPath {
		if cfg.ASPathLists[al.Name] != nil {
			continue
		}
		for _, en := range al.Entries {
			lines = append(lines, fmt.Sprintf("ip as-path access-list %s %s %s",
				al.Name, ciscoAction(en.Action), en.Regex))
		}
	}
	if len(lines) == 0 {
		return nil, true
	}
	at := rm.Span.StartLine
	return []textOp{{start: at, end: at - 1, lines: lines}}, true
}

// ---------------------------------------------------------------------------
// Juniper

func juniperOps(cfg *ir.Config, e Edit) ([]textOp, bool) {
	switch e := e.(type) {
	case FlipClause:
		rm, cl, err := clauseAt(cfg, e.Map, e.Idx)
		if err != nil || !spanOK(cl.Span) {
			return nil, false
		}
		mod := *cl
		if cl.Action == ir.ClausePermit {
			mod.Action = ir.ClauseDeny
		} else if cl.Action == ir.ClauseDeny {
			mod.Action = ir.ClausePermit
		} else {
			return nil, false
		}
		return juniperReplaceTerm(cfg, rm, cl, &mod)

	case SetDefault:
		rm := cfg.RouteMaps[e.Map]
		if rm == nil || !spanOK(rm.Span) {
			return nil, false
		}
		ind := indentOf(rm.Span.Lines[0]) + "    "
		action := "reject;"
		if e.Action == ir.Permit {
			action = "accept;"
		}
		lines := []string{
			ind + "term repair_default {",
			ind + "    then " + action,
			ind + "}",
		}
		at := rm.Span.EndLine // before the policy's closing brace
		return []textOp{{start: at, end: at - 1, lines: lines}}, true

	case DropClause:
		_, cl, err := clauseAt(cfg, e.Map, e.Idx)
		if err != nil || !spanOK(cl.Span) {
			return nil, false
		}
		return []textOp{{start: cl.Span.StartLine, end: cl.Span.EndLine}}, true

	case InsertClause:
		rm := cfg.RouteMaps[e.Map]
		if rm == nil || !spanOK(rm.Span) {
			return nil, false
		}
		cl := *e.Clause
		cl.Name = juniperTermName(rm, cl.Name, e.At)
		ind := indentOf(rm.Span.Lines[0]) + "    "
		block, ok := juniperTermBlock(cfg, &cl, ind)
		if !ok {
			return nil, false
		}
		at, ok := juniperInsertLine(rm, e.At)
		if !ok {
			return nil, false
		}
		defs, ok := juniperBundleOps(cfg, rm, e.Needs)
		if !ok {
			return nil, false
		}
		return append(defs, textOp{start: at, end: at - 1, lines: block}), true

	case MoveClause:
		rm, cl, err := clauseAt(cfg, e.Map, e.From)
		if err != nil || !spanOK(cl.Span) {
			return nil, false
		}
		next := e.To
		if e.To > e.From {
			next = e.To + 1
		}
		at, ok := juniperInsertLine(rm, next)
		if !ok {
			return nil, false
		}
		return []textOp{
			{start: cl.Span.StartLine, end: cl.Span.EndLine},
			{start: at, end: at - 1, lines: cl.Span.Lines},
		}, true

	case ReplaceSets:
		rm, cl, err := clauseAt(cfg, e.Map, e.Idx)
		if err != nil || !spanOK(cl.Span) {
			return nil, false
		}
		mod := *cl
		mod.Sets = e.Sets
		return juniperReplaceTerm(cfg, rm, cl, &mod)

	case ReplaceMatches:
		rm, cl, err := clauseAt(cfg, e.Map, e.Idx)
		if err != nil || !spanOK(cl.Span) {
			return nil, false
		}
		mod := *cl
		mod.Matches = e.Matches
		defs, ok := juniperBundleOps(cfg, rm, e.Needs)
		if !ok {
			return nil, false
		}
		ops, ok := juniperReplaceTerm(cfg, rm, cl, &mod)
		if !ok {
			return nil, false
		}
		return append(defs, ops...), true

	case ReplacePrefixList:
		pl := cfg.PrefixLists[e.List]
		if pl == nil || !spanOK(pl.Span) {
			return nil, false
		}
		ind := indentOf(pl.Span.Lines[0])
		lines, ok := juniperPrefixListBlock(e.List, e.Entries, ind)
		if !ok {
			return nil, false
		}
		return []textOp{{start: pl.Span.StartLine, end: pl.Span.EndLine, lines: lines}}, true

	case ReplacePrefixEntry:
		pl := cfg.PrefixLists[e.List]
		if pl == nil || e.Idx < 0 || e.Idx >= len(pl.Entries) || !spanOK(pl.Entries[e.Idx].Span) {
			return nil, false
		}
		if !juniperExactPermit(e.Entry) {
			return nil, false
		}
		sp := pl.Entries[e.Idx].Span
		ind := indentOf(sp.Lines[0])
		return []textOp{{start: sp.StartLine, end: sp.EndLine,
			lines: []string{ind + e.Entry.Range.Prefix.String() + ";"}}}, true

	case ReplaceCommunityList:
		cl := cfg.CommunityLists[e.List]
		if cl == nil {
			return nil, false
		}
		start, end, ind, ok := spanRegion(entrySpans(len(cl.Entries), func(i int) ir.TextSpan { return cl.Entries[i].Span }))
		if !ok {
			return nil, false
		}
		lines, ok := juniperCommunityLines(e.List, e.Entries, ind)
		if !ok {
			return nil, false
		}
		return []textOp{{start: start, end: end, lines: lines}}, true

	case ReplaceASPathList:
		al := cfg.ASPathLists[e.List]
		if al == nil || !spanOK(al.Span) {
			return nil, false
		}
		if len(e.Entries) != 1 || e.Entries[0].Action != ir.Permit {
			return nil, false // JunOS as-path holds one regex; groups are out of scope
		}
		ind := indentOf(al.Span.Lines[0])
		return []textOp{{start: al.Span.StartLine, end: al.Span.EndLine,
			lines: []string{fmt.Sprintf("%sas-path %s \"%s\";", ind, e.List, e.Entries[0].Regex)}}}, true
	}
	return nil, false
}

func juniperReplaceTerm(cfg *ir.Config, rm *ir.RouteMap, old, mod *ir.RouteMapClause) ([]textOp, bool) {
	ind := indentOf(old.Span.Lines[0])
	block, ok := juniperTermBlock(cfg, mod, ind)
	if !ok {
		return nil, false
	}
	return []textOp{{start: old.Span.StartLine, end: old.Span.EndLine, lines: block}}, true
}

// juniperTermName replicates InsertClause.Apply's collision renaming and
// names anonymous (IOS-origin) clauses.
func juniperTermName(rm *ir.RouteMap, name string, at int) string {
	if name == "" {
		name = fmt.Sprintf("repair_%d", at)
	}
	for _, existing := range rm.Clauses {
		if existing.Name == name {
			name += "_r"
		}
	}
	return name
}

func juniperInsertLine(rm *ir.RouteMap, at int) (int, bool) {
	if at < len(rm.Clauses) {
		if !spanOK(rm.Clauses[at].Span) {
			return 0, false
		}
		return rm.Clauses[at].Span.StartLine, true
	}
	// Append: before the policy-statement's closing brace.
	return rm.Span.EndLine, true
}

// juniperTermBlock renders a term from IR.
func juniperTermBlock(cfg *ir.Config, cl *ir.RouteMapClause, ind string) ([]string, bool) {
	name := cl.Name
	if name == "" {
		return nil, false
	}
	step := "    "
	lines := []string{ind + "term " + name + " {"}
	if len(cl.Matches) > 0 {
		lines = append(lines, ind+step+"from {")
		for _, m := range cl.Matches {
			ls, ok := juniperFromLines(m, ind+step+step)
			if !ok {
				return nil, false
			}
			lines = append(lines, ls...)
		}
		lines = append(lines, ind+step+"}")
	}
	lines = append(lines, ind+step+"then {")
	for _, s := range cl.Sets {
		ls, ok := juniperThenLines(cfg, s, ind+step+step)
		if !ok {
			return nil, false
		}
		lines = append(lines, ls...)
	}
	switch cl.Action {
	case ir.ClausePermit:
		lines = append(lines, ind+step+step+"accept;")
	case ir.ClauseDeny:
		lines = append(lines, ind+step+step+"reject;")
	case ir.ClauseFallthrough:
		lines = append(lines, ind+step+step+"next term;")
	}
	lines = append(lines, ind+step+"}")
	lines = append(lines, ind+"}")
	return lines, true
}

func juniperFromLines(m ir.Match, ind string) ([]string, bool) {
	switch m := m.(type) {
	case ir.MatchPrefixList:
		// Several names would render as ANDed from-statements, changing
		// the IR's any-list-matches semantics — refuse.
		if len(m.Lists) != 1 {
			return nil, false
		}
		return []string{ind + "prefix-list " + m.Lists[0] + ";"}, true
	case ir.MatchPrefixListFilter:
		switch m.Modifier {
		case "exact", "orlonger", "longer":
			return []string{ind + "prefix-list-filter " + m.List + " " + m.Modifier + ";"}, true
		}
		return nil, false
	case ir.MatchPrefixRanges:
		var lines []string
		for _, r := range m.Ranges {
			l, ok := juniperRouteFilter(r)
			if !ok {
				return nil, false
			}
			lines = append(lines, ind+l)
		}
		return lines, true
	case ir.MatchCommunity:
		return []string{ind + "community " + juniperNameList(m.Lists) + ";"}, true
	case ir.MatchASPath:
		return []string{ind + "as-path " + juniperNameList(m.Lists) + ";"}, true
	case ir.MatchMED:
		return []string{ind + fmt.Sprintf("metric %d;", m.Value)}, true
	case ir.MatchTag:
		return []string{ind + fmt.Sprintf("tag %d;", m.Value)}, true
	case ir.MatchProtocol:
		parts := make([]string, len(m.Protocols))
		for i, p := range m.Protocols {
			w, ok := juniperProtoWord(p)
			if !ok {
				return nil, false
			}
			parts[i] = w
		}
		return []string{ind + "protocol " + juniperNameList(parts) + ";"}, true
	case ir.MatchNextHop:
		if len(m.Lists) != 1 || !strings.HasPrefix(m.Lists[0], "__nh_") {
			return nil, false
		}
		return []string{ind + "next-hop " + strings.TrimPrefix(m.Lists[0], "__nh_") + ";"}, true
	}
	return nil, false
}

func juniperNameList(names []string) string {
	if len(names) == 1 {
		return names[0]
	}
	return "[ " + strings.Join(names, " ") + " ]"
}

func juniperProtoWord(p ir.Protocol) (string, bool) {
	switch p {
	case ir.ProtoBGP:
		return "bgp", true
	case ir.ProtoOSPF:
		return "ospf", true
	case ir.ProtoStatic:
		return "static", true
	case ir.ProtoConnected:
		return "direct", true
	case ir.ProtoAggregate:
		return "aggregate", true
	case ir.ProtoLocal:
		return "local", true
	}
	return "", false
}

func juniperRouteFilter(r netaddr.PrefixRange) (string, bool) {
	p := r.Prefix
	switch {
	case r.Lo == p.Len && r.Hi == p.Len:
		return fmt.Sprintf("route-filter %s exact;", p), true
	case r.Lo == p.Len && r.Hi == 32:
		return fmt.Sprintf("route-filter %s orlonger;", p), true
	case r.Lo == p.Len+1 && r.Hi == 32:
		return fmt.Sprintf("route-filter %s longer;", p), true
	case r.Lo == p.Len:
		return fmt.Sprintf("route-filter %s upto /%d;", p, r.Hi), true
	case r.Lo >= p.Len:
		return fmt.Sprintf("route-filter %s prefix-length-range /%d-/%d;", p, r.Lo, r.Hi), true
	}
	return "", false
}

func juniperThenLines(cfg *ir.Config, s ir.SetAction, ind string) ([]string, bool) {
	switch s := s.(type) {
	case ir.SetLocalPref:
		return []string{ind + fmt.Sprintf("local-preference %d;", s.Value)}, true
	case ir.SetMED:
		return []string{ind + fmt.Sprintf("metric %d;", s.Value)}, true
	case ir.SetTag:
		return []string{ind + fmt.Sprintf("tag %d;", s.Value)}, true
	case ir.SetNextHop:
		return []string{ind + "next-hop " + s.Addr.String() + ";"}, true
	case ir.SetASPathPrepend:
		parts := make([]string, len(s.ASNs))
		for i, a := range s.ASNs {
			parts[i] = fmt.Sprintf("%d", a)
		}
		return []string{ind + "as-path-prepend " + strings.Join(parts, " ") + ";"}, true
	case ir.DeleteCommunity:
		return []string{ind + "community delete " + s.List + ";"}, true
	case ir.SetCommunities:
		return juniperSetCommunities(cfg, s, ind)
	}
	// SetWeight: Cisco-proprietary, no JunOS rendering.
	return nil, false
}

// juniperSetCommunities renders a community set/add action. A defined
// list whose literal members equal the action's communities is referenced
// by name; otherwise each community renders as an inline literal, which
// the parser resolves as a literal exactly when the name is undefined.
func juniperSetCommunities(cfg *ir.Config, s ir.SetCommunities, ind string) ([]string, bool) {
	if len(s.Communities) == 0 {
		return nil, false
	}
	verb := "set"
	if s.Additive {
		verb = "add"
	}
	for name, cl := range cfg.CommunityLists {
		if sameStrings(communityLiterals(cl), s.Communities) {
			return []string{ind + "community " + verb + " " + name + ";"}, true
		}
	}
	for _, c := range s.Communities {
		if cfg.CommunityLists[c] != nil {
			return nil, false // literal collides with a defined list name
		}
	}
	lines := []string{ind + "community " + verb + " " + s.Communities[0] + ";"}
	for _, c := range s.Communities[1:] {
		lines = append(lines, ind+"community add "+c+";")
	}
	return lines, true
}

func communityLiterals(cl *ir.CommunityList) []string {
	var out []string
	for _, e := range cl.Entries {
		for _, m := range e.Conjuncts {
			if m.Literal != "" {
				out = append(out, m.Literal)
			}
		}
	}
	return out
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func juniperExactPermit(e ir.PrefixListEntry) bool {
	return e.Action == ir.Permit && e.Range.Lo == e.Range.Prefix.Len && e.Range.Hi == e.Range.Prefix.Len
}

func juniperPrefixListBlock(name string, entries []ir.PrefixListEntry, ind string) ([]string, bool) {
	lines := []string{ind + "prefix-list " + name + " {"}
	for _, e := range entries {
		if !juniperExactPermit(e) {
			return nil, false // JunOS prefix-list entries are exact permits
		}
		lines = append(lines, ind+"    "+e.Range.Prefix.String()+";")
	}
	return append(lines, ind+"}"), true
}

func juniperCommunityLines(name string, entries []ir.CommunityListEntry, ind string) ([]string, bool) {
	var lines []string
	for _, e := range entries {
		if e.Action != ir.Permit || len(e.Conjuncts) == 0 {
			return nil, false // JunOS communities have no deny entries
		}
		parts := make([]string, len(e.Conjuncts))
		for i, m := range e.Conjuncts {
			if m.Regex != "" {
				parts[i] = m.Regex
			} else {
				parts[i] = m.Literal
			}
		}
		lines = append(lines, fmt.Sprintf("%scommunity %s members %s;", ind, name, juniperNameList(parts)))
	}
	return lines, true
}

// juniperBundleOps renders donor list definitions before the
// policy-statement that needs them (same policy-options scope).
func juniperBundleOps(cfg *ir.Config, rm *ir.RouteMap, b ListBundle) ([]textOp, bool) {
	if b.empty() {
		return nil, true
	}
	if !spanOK(rm.Span) {
		return nil, false
	}
	ind := indentOf(rm.Span.Lines[0])
	var lines []string
	for _, pl := range b.Prefix {
		if cfg.PrefixLists[pl.Name] != nil {
			continue
		}
		ls, ok := juniperPrefixListBlock(pl.Name, pl.Entries, ind)
		if !ok {
			return nil, false
		}
		lines = append(lines, ls...)
	}
	for _, cl := range b.Community {
		if cfg.CommunityLists[cl.Name] != nil {
			continue
		}
		ls, ok := juniperCommunityLines(cl.Name, cl.Entries, ind)
		if !ok {
			return nil, false
		}
		lines = append(lines, ls...)
	}
	for _, al := range b.ASPath {
		if cfg.ASPathLists[al.Name] != nil {
			continue
		}
		if len(al.Entries) != 1 || al.Entries[0].Action != ir.Permit {
			return nil, false
		}
		lines = append(lines, fmt.Sprintf("%sas-path %s \"%s\";", ind, al.Name, al.Entries[0].Regex))
	}
	if len(lines) == 0 {
		return nil, true
	}
	at := rm.Span.StartLine
	return []textOp{{start: at, end: at - 1, lines: lines}}, true
}
