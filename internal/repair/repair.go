// Package repair synthesizes oracle-validated minimal edits that make a
// differing configuration pair behaviorally equivalent. Given the
// localized diff regions Campion reports for a policy-chain pair, the
// search generates clause- and list-level candidate edits to config B
// seeded by the regions' deciding clauses, scores each candidate by
// re-running SemanticDiff on the patched IR, and accepts a repair only
// when the symbolic re-diff is empty AND the concrete oracle agrees with
// config A on every stored witness and sampled route — the same
// dual-implementation discipline the differential harness applies to the
// engine itself.
package repair

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime/debug"
	"sort"
	"time"

	"repro/internal/bdd"
	"repro/internal/core"
	"repro/internal/ddnf"
	"repro/internal/headerloc"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/oracle"
	"repro/internal/semdiff"
	"repro/internal/symbolic"
)

// Options tunes the repair search. The zero value gets sensible
// defaults from withDefaults.
type Options struct {
	// MaxEdits bounds the number of edits a repair may compose
	// (the -budget flag). Default 2 — Figure 1's translation bug needs a
	// prefix-exactness fix and a community-conjunction fix.
	MaxEdits int
	// MaxCandidates bounds the total candidate evaluations (symbolic
	// re-diffs) across all depths. Default 4000.
	MaxCandidates int
	// TopK bounds how many verified repairs (or best partial candidates)
	// are reported per pair. Default 3.
	TopK int
	// Samples is the number of well-formed routes sampled for the
	// concrete oracle cross-check, in addition to one witness per diff
	// region. Default 48.
	Samples int
	// Seed drives the sampling RNG; the search itself is deterministic.
	Seed int64
	// Timeout, when positive, caps the wall time of one Run call.
	Timeout time.Duration
	// MaxNodes is the per-pair BDD node budget (0 = unlimited); overrun
	// degrades the pair to a structured ErrBudget failure.
	MaxNodes int
	// Reorder enables the static variable-order heuristic for the
	// encodings the search builds.
	Reorder bool
	// GC trims the initial encoding's unique table after witness
	// collection, bounding peak memory while the candidate loop runs.
	GC bool
	// Journal, when non-nil, receives one EvRepair event per pair.
	Journal *obs.Journal
	// Metrics, when non-nil, receives campion_repair_* counters.
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.MaxEdits <= 0 {
		o.MaxEdits = 2
	}
	if o.MaxCandidates <= 0 {
		o.MaxCandidates = 4000
	}
	if o.TopK <= 0 {
		o.TopK = 3
	}
	if o.Samples <= 0 {
		o.Samples = 48
	}
	return o
}

// Candidate is one evaluated repair: an edit sequence, its total size,
// and how it scored.
type Candidate struct {
	Edits []Edit
	// Size is the summed edit size (clause-level ops count 1; list
	// rewrites count their entry distance).
	Size int
	// Residual is the number of diff regions remaining after the edits.
	Residual int
	// Residuals summarizes the remaining regions (partial candidates).
	Residuals []string
	// Verified means the symbolic re-diff was empty AND the concrete
	// oracle agreed with config A on every stored route.
	Verified bool
	// Renderable means every edit has a vendor-text rendering for
	// config B's dialect (a repair can be semantically verified yet only
	// expressible in IR).
	Renderable bool
}

// Describe renders the candidate's edit sequence.
func (c Candidate) Describe() string {
	out := ""
	for i, e := range c.Edits {
		if i > 0 {
			out += "; "
		}
		out += e.Describe()
	}
	return out
}

// PairRepair is the repair outcome for one matched policy-chain pair.
type PairRepair struct {
	Pair core.PolicyPair
	// InitialDiffs is the region count of the pair's original diff;
	// 0 means the pair was already equivalent.
	InitialDiffs int
	// Repair is the accepted minimal repair, nil if none was found.
	Repair *Candidate
	// Alternatives holds further verified repairs, or — when Repair is
	// nil — the best partial candidates with residual summaries.
	Alternatives []Candidate
	// Candidates counts the candidate evaluations spent.
	Candidates int
	// OracleRejections counts candidates whose symbolic re-diff was
	// empty but that the concrete oracle refuted — each one a
	// symbolic/concrete divergence worth a bug report.
	OracleRejections int
	// Depth is the edit-composition depth the search reached.
	Depth   int
	Elapsed time.Duration
	// Err is a structured *core.PairError when the pair degraded
	// (budget, cancellation, crash) instead of completing.
	Err error
}

// Kind classifies the outcome for journaling: clean, repaired, partial,
// or failed.
func (pr PairRepair) Kind() string {
	switch {
	case pr.Err != nil:
		return "failed"
	case pr.InitialDiffs == 0:
		return "clean"
	case pr.Repair != nil:
		return "repaired"
	case len(pr.Alternatives) > 0:
		return "partial"
	default:
		return "failed"
	}
}

// Result is the outcome of one Run over a configuration pair.
type Result struct {
	Config1, Config2 *ir.Config
	Pairs            []PairRepair
	// PatchedB is config B with every pair's accepted repair applied,
	// set only when all differing pairs were repaired and the combined
	// edits re-verified together (edits of different pairs can interact
	// through shared lists).
	PatchedB *ir.Config
	// Conflicts lists pairs whose individually-verified repairs stopped
	// verifying under the combined patch.
	Conflicts []string
}

// Repaired reports whether every differing pair has a verified repair
// and the combined patch holds.
func (r *Result) Repaired() bool {
	for _, p := range r.Pairs {
		if p.InitialDiffs > 0 && p.Repair == nil {
			return false
		}
		if p.Err != nil {
			return false
		}
	}
	return len(r.Conflicts) == 0
}

// TotalDiffs sums the pairs' initial diff-region counts.
func (r *Result) TotalDiffs() int {
	n := 0
	for _, p := range r.Pairs {
		n += p.InitialDiffs
	}
	return n
}

// Edits returns the combined edit sequence of all accepted repairs.
func (r *Result) Edits() []Edit {
	var out []Edit
	for _, p := range r.Pairs {
		if p.Repair != nil {
			out = append(out, p.Repair.Edits...)
		}
	}
	return out
}

// matchPairs is core's pairing policy: BGP/redistribution chains via
// MatchPolicies, falling back to same-named route maps for standalone
// policy files. Duplicate chain pairs (several neighbors sharing one
// policy pair) search once.
func matchPairs(cfg1, cfg2 *ir.Config) []core.PolicyPair {
	pairs := core.MatchPolicies(cfg1, cfg2)
	if len(pairs) == 0 {
		var names []string
		for n := range cfg1.RouteMaps {
			if _, ok := cfg2.RouteMaps[n]; ok {
				names = append(names, n)
			}
		}
		sort.Strings(names)
		for _, n := range names {
			pairs = append(pairs, core.PolicyPair{
				Kind: "route-map", Neighbor: n,
				Names1: []string{n}, Names2: []string{n},
				Name1: n, Name2: n,
			})
		}
	}
	seen := map[string]bool{}
	uniq := pairs[:0]
	for _, p := range pairs {
		key := fmt.Sprintf("%q/%q", p.Names1, p.Names2)
		if !seen[key] {
			seen[key] = true
			uniq = append(uniq, p)
		}
	}
	return uniq
}

// Run searches for repairs to cfg2 for every matched policy pair that
// differs from cfg1. The returned error is non-nil only for caller
// mistakes (nil configs); per-pair degradation is recorded in
// PairRepair.Err, matching core's isolation discipline.
func Run(ctx context.Context, cfg1, cfg2 *ir.Config, opts Options) (*Result, error) {
	if cfg1 == nil || cfg2 == nil {
		return nil, errors.New("repair: nil config")
	}
	opts = opts.withDefaults()
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}
	res := &Result{Config1: cfg1, Config2: cfg2}
	for _, pair := range matchPairs(cfg1, cfg2) {
		pr := searchChain(ctx, cfg1, cfg2, pair, opts)
		emitPair(opts, pr)
		res.Pairs = append(res.Pairs, pr)
	}
	res.applyCombined(opts)
	return res, nil
}

// applyCombined builds PatchedB when every differing pair was repaired,
// re-verifying the pairs under the union of all edits.
func (r *Result) applyCombined(opts Options) {
	edits := r.Edits()
	ok := len(r.Conflicts) == 0
	for _, p := range r.Pairs {
		if p.Err != nil || (p.InitialDiffs > 0 && p.Repair == nil) {
			ok = false
		}
	}
	if !ok || len(edits) == 0 {
		return
	}
	patched := r.Config2.ClonePolicy()
	for _, e := range edits {
		if err := e.Apply(patched); err != nil {
			r.Conflicts = append(r.Conflicts, fmt.Sprintf("apply %s: %v", e.Describe(), err))
			return
		}
	}
	f := bdd.NewFactory(0)
	for _, p := range r.Pairs {
		rm1 := core.ResolveChain(r.Config1, p.Pair.Names1)
		rm2 := core.ResolveChain(patched, p.Pair.Names2)
		enc := buildEncoding(f, opts, r.Config1, patched)
		ds, err := semdiff.DiffRouteMapsLimit(enc, r.Config1, rm1, patched, rm2, 1)
		if err != nil || len(ds) != 0 {
			r.Conflicts = append(r.Conflicts, p.Pair.String())
		}
	}
	if len(r.Conflicts) == 0 {
		r.PatchedB = patched
	}
}

// emitPair journals and counts one pair's outcome.
func emitPair(opts Options, pr PairRepair) {
	kind := pr.Kind()
	if opts.Journal != nil {
		detail := map[string]string{"depth": fmt.Sprint(pr.Depth)}
		if pr.Repair != nil {
			detail["edits"] = pr.Repair.Describe()
			detail["size"] = fmt.Sprint(pr.Repair.Size)
		}
		if pr.OracleRejections > 0 {
			detail["oracle_rejections"] = fmt.Sprint(pr.OracleRejections)
		}
		ev := obs.Event{
			Type: obs.EvRepair, Pair: pr.Pair.String(), Kind: kind,
			Dur: int64(pr.Elapsed), Diffs: pr.InitialDiffs, N: int64(pr.Candidates),
			Detail: detail,
		}
		if pr.Err != nil {
			ev.Err = pr.Err.Error()
		}
		opts.Journal.Emit(ev)
	}
	if opts.Metrics != nil {
		opts.Metrics.Counter("campion_repair_pairs_total",
			"repair outcomes by kind", obs.L("outcome", kind)).Add(1)
		opts.Metrics.Counter("campion_repair_candidates_total",
			"candidate edit sequences evaluated").Add(uint64(pr.Candidates))
		opts.Metrics.Counter("campion_repair_oracle_rejections_total",
			"symbolically-clean candidates refuted by the concrete oracle").Add(uint64(pr.OracleRejections))
		opts.Metrics.Counter("campion_repair_duration_nanoseconds",
			"wall time spent in repair search").Add(uint64(pr.Elapsed.Nanoseconds()))
	}
}

// pollFn adapts a context into the kernel's interrupt poll, observing a
// passed deadline even before the timer fires (core's ctxErr contract).
func pollFn(ctx context.Context) func() error {
	return func() error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if d, ok := ctx.Deadline(); ok && !time.Now().Before(d) {
			return context.DeadlineExceeded
		}
		return nil
	}
}

// buildEncoding constructs a route encoding on f honoring the reorder
// option. NewRouteEncodingInto* resets the factory, so per-candidate
// rebuilds do not accumulate nodes across evaluations.
func buildEncoding(f *bdd.Factory, opts Options, cfgs ...*ir.Config) *symbolic.RouteEncoding {
	if opts.Reorder {
		order, _, _ := symbolic.ChooseRouteOrder(cfgs...)
		return symbolic.NewRouteEncodingIntoOrdered(f, order, cfgs...)
	}
	return symbolic.NewRouteEncodingInto(f, cfgs...)
}

// pairFailure converts a recovered panic into the pair's structured
// error, mirroring core's taskFailure taxonomy.
func pairFailure(r any, pair core.PolicyPair) error {
	if a, ok := r.(bdd.Abort); ok {
		kind := core.ErrCanceled
		if errors.Is(a.Err, bdd.ErrNodeBudget) {
			kind = core.ErrBudget
		}
		return &core.PairError{Pair: pair.String(), Kind: kind, Err: a.Err}
	}
	return &core.PairError{
		Pair: pair.String(), Kind: core.ErrInternal,
		Err: fmt.Errorf("panic: %v", r), Stack: string(debug.Stack()),
	}
}

// scored is a candidate edit sequence with its re-diff region count.
type scored struct {
	edits    []Edit
	size     int
	residual int
	// maxIdx is the largest single-candidate pool index in the sequence;
	// beam extension only appends higher indices, so each combination is
	// evaluated once regardless of order.
	maxIdx int
}

// searchChain runs the repair search for one policy-chain pair.
func searchChain(ctx context.Context, cfg1, cfg2 *ir.Config, pair core.PolicyPair, opts Options) (pr PairRepair) {
	start := time.Now()
	pr.Pair = pair
	defer func() {
		pr.Elapsed = time.Since(start)
		if r := recover(); r != nil {
			pr.Err = pairFailure(r, pair)
		}
	}()

	poll := pollFn(ctx)
	if err := poll(); err != nil {
		pr.Err = &core.PairError{Pair: pair.String(), Kind: core.ErrCanceled, Err: err}
		return pr
	}

	rm1 := core.ResolveChain(cfg1, pair.Names1)
	rm2 := core.ResolveChain(cfg2, pair.Names2)

	// Initial diff + witness collection on a dedicated factory.
	f := bdd.NewFactory(0)
	f.SetInterrupt(opts.MaxNodes, poll)
	enc0 := buildEncoding(f, opts, cfg1, cfg2)
	diffs0, err := semdiff.DiffRouteMaps(enc0, cfg1, rm1, cfg2, rm2)
	if err != nil {
		pr.Err = &core.PairError{Pair: pair.String(), Kind: core.ErrInternal, Err: err}
		return pr
	}
	pr.InitialDiffs = len(diffs0)
	if len(diffs0) == 0 {
		return pr
	}

	routes := collectRoutes(enc0, diffs0, opts)
	terms := localizeDiffs(enc0, cfg1, cfg2, diffs0)
	if opts.GC {
		enc0.GC(nil)
	}

	gctx := newGenContext(cfg1, cfg2, rm1, rm2, pair.Names2, terms)
	singles := generate(gctx, diffs0)
	if len(singles) > opts.MaxCandidates {
		singles = singles[:opts.MaxCandidates]
	}

	// Scoring factory: every candidate rebuilds the encoding over
	// (cfg1, patched), which resets the factory, so evaluations are
	// independent and the node budget applies per candidate.
	f2 := bdd.NewFactory(0)
	f2.SetInterrupt(opts.MaxNodes, poll)
	budget := opts.MaxCandidates

	type evalResult struct {
		residual int
		diffs    []semdiff.RouteMapDiff
		patched  *ir.Config
		rm2p     *ir.RouteMap
		enc      *symbolic.RouteEncoding
		ok       bool
	}
	eval := func(edits []Edit, limit int) evalResult {
		pr.Candidates++
		budget--
		f2.BeginWork()
		patched := cfg2.ClonePolicy()
		for _, e := range edits {
			if err := e.Apply(patched); err != nil {
				return evalResult{}
			}
		}
		enc := buildEncoding(f2, opts, cfg1, patched)
		rm2p := core.ResolveChain(patched, pair.Names2)
		ds, err := semdiff.DiffRouteMapsLimit(enc, cfg1, rm1, patched, rm2p, limit)
		if err != nil {
			return evalResult{}
		}
		return evalResult{residual: len(ds), diffs: ds, patched: patched, rm2p: rm2p, enc: enc, ok: true}
	}
	verify := func(patched *ir.Config, rm2p *ir.RouteMap) bool {
		for _, r := range routes {
			d1 := oracle.EvalRouteMap(cfg1, rm1, r)
			d2 := oracle.EvalRouteMap(patched, rm2p, r)
			if d1.Disagrees(d2) {
				pr.OracleRejections++
				return false
			}
		}
		return true
	}
	finish := func(c scored) *Candidate {
		cand := &Candidate{Edits: c.edits, Size: c.size, Residual: c.residual, Renderable: true}
		for _, e := range c.edits {
			if _, ok := renderEditOps(cfg2, e); !ok {
				cand.Renderable = false
			}
		}
		if c.residual > 0 {
			if ev := eval(c.edits, 4); ev.ok {
				cand.Residuals = summarizeDiffs(ev.diffs)
			}
		}
		return cand
	}

	// Depth 1: score every single in minimality order; oracle-verify
	// zero-residual hits as they appear, so the first survivor is the
	// minimal repair under the deterministic candidate order.
	pr.Depth = 1
	var verified []scored
	var partials []scored
	for i, e := range singles {
		if budget <= 0 {
			break
		}
		ev := eval([]Edit{e}, 0)
		if !ev.ok {
			continue
		}
		s := scored{edits: []Edit{e}, size: e.Size(), residual: ev.residual, maxIdx: i}
		if ev.residual == 0 {
			if verify(ev.patched, ev.rm2p) {
				verified = append(verified, s)
				if len(verified) >= opts.TopK {
					break
				}
			}
			continue
		}
		partials = append(partials, s)
	}

	// Beam deepening: extend the best partial sequences with the best
	// partial singles, one depth at a time, until a verified repair
	// appears or the edit budget runs out.
	const beamWidth, extendPool = 8, 24
	sortScored(partials)
	pool := partials
	if len(pool) > extendPool {
		pool = pool[:extendPool]
	}
	beam := partials
	if len(beam) > beamWidth {
		beam = beam[:beamWidth]
	}
	for depth := 2; depth <= opts.MaxEdits && len(verified) == 0 && budget > 0 && len(beam) > 0; depth++ {
		pr.Depth = depth
		var zeros []scored
		var next []scored
		for _, combo := range beam {
			for _, p := range pool {
				if budget <= 0 {
					break
				}
				if p.maxIdx <= combo.maxIdx {
					continue
				}
				if overlaps(combo.edits, p.edits[0]) {
					continue
				}
				edits := append(append([]Edit(nil), combo.edits...), p.edits[0])
				ev := eval(edits, 0)
				if !ev.ok {
					continue
				}
				s := scored{edits: edits, size: combo.size + p.edits[0].Size(), residual: ev.residual, maxIdx: p.maxIdx}
				if ev.residual == 0 {
					if verify(ev.patched, ev.rm2p) {
						zeros = append(zeros, s)
					}
					continue
				}
				next = append(next, s)
			}
		}
		if len(zeros) > 0 {
			sortScored(zeros)
			if len(zeros) > opts.TopK {
				zeros = zeros[:opts.TopK]
			}
			verified = zeros
			break
		}
		sortScored(next)
		beam = next
		if len(beam) > beamWidth {
			beam = beam[:beamWidth]
		}
	}

	if len(verified) > 0 {
		first := finish(verified[0])
		first.Verified = true
		pr.Repair = first
		for _, v := range verified[1:] {
			alt := finish(v)
			alt.Verified = true
			pr.Alternatives = append(pr.Alternatives, *alt)
		}
		return pr
	}

	// No repair: report the best residual-reducing candidates with
	// summaries of what remains.
	best := append(partials, beam...)
	sortScored(best)
	seen := map[string]bool{}
	for _, s := range best {
		if s.residual >= len(diffs0) {
			continue
		}
		c := finish(s)
		if seen[c.Describe()] {
			continue
		}
		seen[c.Describe()] = true
		pr.Alternatives = append(pr.Alternatives, *c)
		if len(pr.Alternatives) >= opts.TopK {
			break
		}
	}
	return pr
}

// sortScored orders candidates by (residual, size, description) — the
// search's global notion of "better".
func sortScored(s []scored) {
	sort.SliceStable(s, func(i, j int) bool {
		if s[i].residual != s[j].residual {
			return s[i].residual < s[j].residual
		}
		if s[i].size != s[j].size {
			return s[i].size < s[j].size
		}
		return describeEdits(s[i].edits) < describeEdits(s[j].edits)
	})
}

func describeEdits(es []Edit) string {
	out := ""
	for _, e := range es {
		out += e.Describe() + ";"
	}
	return out
}

// overlaps reports whether an edit duplicates one already in the
// sequence (beam extension never stacks identical edits).
func overlaps(es []Edit, e Edit) bool {
	d := e.Describe()
	for _, o := range es {
		if o.Describe() == d {
			return true
		}
	}
	return false
}

// collectRoutes draws the concrete routes the oracle cross-check runs
// on: one exact witness per diff region plus well-formed samples. All
// draws happen on the initial encoding so the stored routes are
// independent of any candidate.
func collectRoutes(enc *symbolic.RouteEncoding, diffs []semdiff.RouteMapDiff, opts Options) []*ir.Route {
	var routes []*ir.Route
	for i, d := range diffs {
		if i >= 16 {
			break
		}
		if w, exact := enc.WitnessRoute(d.Inputs); exact && w != nil {
			routes = append(routes, w)
		}
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	coin := func() bool { return rng.Intn(2) == 1 }
	for i := 0; i < opts.Samples; i++ {
		set := enc.WellFormed
		if len(diffs) > 0 && i%2 == 0 {
			// Alternate draws between the differing regions (where the
			// repair must change behavior to match A) and the whole
			// space (where it must not regress agreement).
			set = diffs[(i/2)%len(diffs)].Inputs
		}
		a := enc.F.RandSat(set, coin)
		if a == nil {
			continue
		}
		if r, ok := enc.ExactRoute(a); ok {
			routes = append(routes, r)
		}
	}
	return routes
}

// localizeDiffs computes the per-region prefix localization terms that
// seed range-surgery candidates.
func localizeDiffs(enc *symbolic.RouteEncoding, cfg1, cfg2 *ir.Config, diffs []semdiff.RouteMapDiff) [][]ddnf.FlatTerm {
	loc := headerloc.NewRouteLocalizer(enc, cfg1, cfg2)
	out := make([][]ddnf.FlatTerm, len(diffs))
	for i, d := range diffs {
		l := loc.Localize(d.Inputs)
		ts := l.Terms
		if len(ts) > 8 {
			ts = ts[:8]
		}
		out[i] = ts
	}
	return out
}

// summarizeDiffs renders residual regions for partial-candidate reports.
func summarizeDiffs(diffs []semdiff.RouteMapDiff) []string {
	var out []string
	for i, d := range diffs {
		if i >= 4 {
			out = append(out, fmt.Sprintf("... and %d more regions", len(diffs)-i))
			break
		}
		out = append(out, fmt.Sprintf("A %s (%s) vs B %s (%s)",
			clauseLabel(d.Path1.Terminal), acceptWord(d.Path1.Accept),
			clauseLabel(d.Path2.Terminal), acceptWord(d.Path2.Accept)))
	}
	return out
}

func acceptWord(a bool) string {
	if a {
		return "accept"
	}
	return "reject"
}
