package fleet

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
)

func testReport(t *testing.T) *core.Report {
	t.Helper()
	c1 := parseCisco(t, "a.cfg", hashBaseCfg)
	c2 := parseCisco(t, "b.cfg", strings.Replace(
		strings.Replace(hashBaseCfg, "hostname alpha", "hostname beta", 1),
		"local-preference 120", "local-preference 200", 1))
	rep, err := core.Diff(c1, c2, core.Options{})
	if err != nil {
		t.Fatalf("diff: %v", err)
	}
	if rep.TotalDifferences() == 0 {
		t.Fatal("test pair reports no differences")
	}
	return rep
}

func entryFiles(t *testing.T, dir, sub string) []string {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join(dir, storeVersion, sub))
	if err != nil {
		t.Fatalf("readdir: %v", err)
	}
	var out []string
	for _, e := range entries {
		out = append(out, filepath.Join(dir, storeVersion, sub, e.Name()))
	}
	return out
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.PutHash("sum1", "hash1", "alpha", false)
	if e, ok := s.GetHash("sum1"); !ok || e.Hash != "hash1" || e.Hostname != "alpha" {
		t.Fatalf("hash entry round trip: %+v ok=%v", e, ok)
	}
	if _, ok := s.GetHash("absent"); ok {
		t.Fatal("hit on absent hash entry")
	}

	rep := testReport(t)
	s.PutReport("h1", "h2", "fp", rep)
	got, ok := s.GetReport("h1", "h2", "fp")
	if !ok {
		t.Fatal("report miss after put")
	}
	if got.TotalDifferences() != rep.TotalDifferences() {
		t.Fatalf("difference count changed: %d vs %d",
			got.TotalDifferences(), rep.TotalDifferences())
	}
	// Key discrimination: orientation and options fingerprint matter.
	if _, ok := s.GetReport("h2", "h1", "fp"); ok {
		t.Fatal("hit on swapped orientation")
	}
	if _, ok := s.GetReport("h1", "h2", "other"); ok {
		t.Fatal("hit on different options fingerprint")
	}
	// A second store over the same directory sees the entries.
	s2, _ := OpenStore(dir)
	if _, ok := s2.GetReport("h1", "h2", "fp"); !ok {
		t.Fatal("fresh store over same dir misses")
	}
}

// TestStoreCorruption: truncated and garbled entries are misses that
// self-delete; the store never errors and never serves bad data.
func TestStoreCorruption(t *testing.T) {
	dir := t.TempDir()
	s, _ := OpenStore(dir)
	s.PutReport("h1", "h2", "fp", testReport(t))
	s.PutHash("sum1", "hash1", "alpha", false)

	corruptions := []func(path string){
		func(p string) { // truncate mid-body
			data, _ := os.ReadFile(p)
			os.WriteFile(p, data[:len(data)/2], 0o644)
		},
		func(p string) { // flip a byte in the body (checksum mismatch)
			data, _ := os.ReadFile(p)
			data[len(data)-1] ^= 0x20
			os.WriteFile(p, data, 0o644)
		},
		func(p string) { // empty file
			os.WriteFile(p, nil, 0o644)
		},
		func(p string) { // version mismatch
			data, _ := os.ReadFile(p)
			os.WriteFile(p, []byte(strings.Replace(string(data),
				"campion-cache "+storeVersion, "campion-cache v0", 1)), 0o644)
		},
	}
	for i, corrupt := range corruptions {
		s.PutReport("h1", "h2", "fp", testReport(t))
		path := entryFiles(t, dir, "reports")[0]
		corrupt(path)
		if _, ok := s.GetReport("h1", "h2", "fp"); ok {
			t.Fatalf("corruption %d: served a corrupted entry", i)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Fatalf("corruption %d: bad entry not deleted", i)
		}
	}
	if got := s.Stats().Corrupt; got != uint64(len(corruptions)) {
		t.Fatalf("corrupt counter = %d, want %d", got, len(corruptions))
	}

	// Hash entries take the same treatment.
	path := entryFiles(t, dir, "hashes")[0]
	os.WriteFile(path, []byte("not a cache entry"), 0o644)
	if _, ok := s.GetHash("sum1"); ok {
		t.Fatal("served a corrupted hash entry")
	}
	// Recompute-and-overwrite works after corruption.
	s.PutHash("sum1", "hash1", "alpha", false)
	if _, ok := s.GetHash("sum1"); !ok {
		t.Fatal("recomputed entry not served")
	}
}

// TestStoreKeyEcho: an entry renamed onto another key (filename/key
// mismatch, the collision paranoia check) is rejected.
func TestStoreKeyEcho(t *testing.T) {
	dir := t.TempDir()
	s, _ := OpenStore(dir)
	s.PutReport("h1", "h2", "fp", testReport(t))
	src := entryFiles(t, dir, "reports")[0]
	dst := s.path("reports", "report", "x1", "x2", "fp")
	if err := os.Rename(src, dst); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.GetReport("x1", "x2", "fp"); ok {
		t.Fatal("served an entry whose embedded key disagrees with its name")
	}
}

func TestStoreEviction(t *testing.T) {
	dir := t.TempDir()
	s, _ := OpenStore(dir)
	s.SetMaxReports(2)
	rep := testReport(t)
	for i := 0; i < 5; i++ {
		s.PutReport("h1", "h2", string(rune('a'+i)), rep)
	}
	s.EvictNow()
	if n := len(entryFiles(t, dir, "reports")); n > 2 {
		t.Fatalf("%d report entries after eviction, want <= 2", n)
	}
	if s.Stats().Evictions == 0 {
		t.Fatal("evictions not counted")
	}
}

// TestStoreConcurrent: concurrent writers and readers on one directory
// (the multi-process sharing model, exercised in-process under -race).
func TestStoreConcurrent(t *testing.T) {
	dir := t.TempDir()
	rep := testReport(t)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s, err := OpenStore(dir)
			if err != nil {
				t.Errorf("open: %v", err)
				return
			}
			for i := 0; i < 20; i++ {
				s.PutReport("h1", "h2", "fp", rep)
				if got, ok := s.GetReport("h1", "h2", "fp"); ok {
					if got.TotalDifferences() != rep.TotalDifferences() {
						t.Errorf("goroutine %d: torn read", g)
						return
					}
				}
				s.PutHash("sum", "hash", "host", false)
				s.GetHash("sum")
			}
		}(g)
	}
	wg.Wait()
	s, _ := OpenStore(dir)
	if _, ok := s.GetReport("h1", "h2", "fp"); !ok {
		t.Fatal("entry missing after concurrent writes")
	}
}

func TestOptionsFingerprint(t *testing.T) {
	base := OptionsFingerprint(core.Options{})
	if OptionsFingerprint(core.Options{Workers: 8, Reorder: true, GC: true}) != base {
		t.Fatal("execution-mode options changed the fingerprint; cached reports are mode-invariant")
	}
	if OptionsFingerprint(core.Options{ExhaustiveCommunities: true}) == base {
		t.Fatal("exhaustive-communities did not change the fingerprint")
	}
	if OptionsFingerprint(core.Options{Components: []core.Component{core.ComponentACLs}}) == base {
		t.Fatal("component restriction did not change the fingerprint")
	}
}

// TestMemStore: a directory-less store round-trips entries entirely in
// memory and never touches the filesystem.
func TestMemStore(t *testing.T) {
	s := OpenMemStore()
	s.PutHash("sum1", "hash1", "alpha", false)
	if e, ok := s.GetHash("sum1"); !ok || e.Hash != "hash1" || e.Hostname != "alpha" {
		t.Fatalf("hash entry round trip: %+v ok=%v", e, ok)
	}
	if _, ok := s.GetHash("absent"); ok {
		t.Fatal("hit on absent hash entry")
	}
	rep := testReport(t)
	s.PutReport("h1", "h2", "fp", rep)
	got, ok := s.GetReport("h1", "h2", "fp")
	if !ok {
		t.Fatal("report miss after put")
	}
	if got.TotalDifferences() != rep.TotalDifferences() {
		t.Fatalf("difference count changed: %d vs %d",
			got.TotalDifferences(), rep.TotalDifferences())
	}
	if _, ok := s.GetReport("h2", "h1", "fp"); ok {
		t.Fatal("hit on swapped orientation")
	}
	if _, ok := s.GetReport("h1", "h2", "other"); ok {
		t.Fatal("hit on different options fingerprint")
	}
	// Eviction and bounds are disk concepts; they must be no-ops here.
	s.SetMaxReports(1)
	s.EvictNow()
	if _, ok := s.GetReport("h1", "h2", "fp"); !ok {
		t.Fatal("memory entry evicted by disk bound")
	}
	st := s.Stats()
	if st.ReportHits == 0 || st.HashHits == 0 {
		t.Fatalf("hit counters not advanced: %+v", st)
	}
}

// TestStoreMemo: with the write-through memo enabled, entries written to
// (or read from) disk keep serving after the backing files are removed,
// and memo hits fire the observer like any other hit.
func TestStoreMemo(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.EnableMemo()
	var mu sync.Mutex
	hits := map[string]int{}
	s.SetObserver(func(op, kind string) {
		mu.Lock()
		hits[op+"/"+kind]++
		mu.Unlock()
	})

	rep := testReport(t)
	s.PutReport("h1", "h2", "fp", rep)
	s.PutHash("sum1", "hash1", "alpha", false)

	// A fresh memo-enabled store must pull from disk once, then memoize.
	s2, _ := OpenStore(dir)
	s2.EnableMemo()
	if _, ok := s2.GetReport("h1", "h2", "fp"); !ok {
		t.Fatal("disk miss on fresh store")
	}

	// Remove the backing files: the original store and the warmed store
	// both keep serving from memory.
	for _, sub := range []string{"reports", "hashes"} {
		for _, p := range entryFiles(t, dir, sub) {
			os.Remove(p)
		}
	}
	if _, ok := s.GetReport("h1", "h2", "fp"); !ok {
		t.Fatal("memo miss on writer store after disk removal")
	}
	if e, ok := s.GetHash("sum1"); !ok || e.Hash != "hash1" {
		t.Fatal("hash memo miss on writer store after disk removal")
	}
	if _, ok := s2.GetReport("h1", "h2", "fp"); !ok {
		t.Fatal("memo miss on reader store after disk removal")
	}
	// But a third store (no memo history) sees the truth: gone.
	s3, _ := OpenStore(dir)
	if _, ok := s3.GetReport("h1", "h2", "fp"); ok {
		t.Fatal("phantom hit on fresh store after disk removal")
	}

	mu.Lock()
	defer mu.Unlock()
	if hits["hit/report"] < 1 || hits["hit/hash"] < 1 {
		t.Fatalf("observer did not see memo hits: %v", hits)
	}
}
