// Persistent on-disk cache: device-hash entries (raw-bytes digest →
// semantic hash, so warm runs skip parsing unchanged files) and finished
// pair reports keyed by (hashA, hashB, options fingerprint).
//
// Layout: <dir>/v1/hashes/<key>.json and <dir>/v1/reports/<key>.json,
// one entry per file. Every entry is written atomically (temp file +
// rename into place) and carries a checksum header plus an embedded copy
// of its key, so a truncated, corrupted, or collided file is detected on
// read and treated as a miss — the entry is deleted and recomputed,
// never trusted and never fatal. Concurrent processes sharing one cache
// directory are safe by construction: readers only ever see fully
// renamed files, and two writers racing on one key resolve to
// last-writer-wins (both wrote the same semantic content, so either is
// correct).
//
// Versioning: the store directory is namespaced by storeVersion, the
// device hash mixes in its own hashVersion, and report payloads carry
// payloadVersion. Any format change lands in a fresh namespace or fails
// the version check on read — stale entries self-invalidate.
package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// storeVersion namespaces the on-disk layout.
const storeVersion = "v1"

// entryMagic heads every cache file: "campion-cache <version> <sha256 of
// body>\n<body>". A file that does not parse to this shape is corrupt.
const entryMagic = "campion-cache"

// Store is a persistent cache rooted at a directory. All methods are
// safe for concurrent use by multiple goroutines and multiple processes.
//
// Two memory variants exist for long-lived processes. OpenMemStore
// builds a Store with no backing directory at all — entries live only in
// the process (the `campion serve` default when no -cache-dir is given).
// EnableMemo layers a write-through in-memory copy over a disk store, so
// a daemon that already paid the disk read (or write) for an entry never
// pays it again; the disk keeps its role as the cross-restart warm
// start. Memo entries are never evicted — SetMaxReports bounds only the
// on-disk report files — so a memoized report can outlive its disk copy;
// that is safe (entries are immutable content keyed by their full
// identity) and bounded by the fleet the process actually audits.
type Store struct {
	dir        string // <root>/v1; "" for a memory-only store
	maxReports int64

	// memo, when non-nil, is the in-memory layer: full entry key →
	// *core.Report (reports) or HashEntry (hashes). Decoded reports are
	// shared between callers; they are never mutated after decode
	// (RespanReport copies).
	memo *sync.Map

	reportHits, reportMisses atomic.Uint64
	hashHits, hashMisses     atomic.Uint64
	evictions, corrupt       atomic.Uint64
	reportPuts               atomic.Uint64

	evictMu sync.Mutex

	// observer, when set, is called at every counter site with the
	// operation ("hit", "miss", "evict", "corrupt") and the entry kind
	// ("hash", "report") — the hook the fleet engine uses for live
	// cache-traffic publication. Stored atomically so SetObserver is safe
	// while lookups are in flight.
	observer atomic.Pointer[func(op, kind string)]
}

// SetObserver installs (or, with nil, removes) the per-event counter
// hook. At most one observer is active; a later call replaces the
// earlier one (last writer wins — relevant only when one Store is shared
// across concurrent runs, where per-run attribution is approximate
// anyway because the counters themselves are shared).
func (s *Store) SetObserver(fn func(op, kind string)) {
	if fn == nil {
		s.observer.Store(nil)
		return
	}
	s.observer.Store(&fn)
}

// observe fires the observer hook, if any.
func (s *Store) observe(op, kind string) {
	if fn := s.observer.Load(); fn != nil {
		(*fn)(op, kind)
	}
}

// StoreStats is a snapshot of the store's counters since OpenStore.
type StoreStats struct {
	ReportHits, ReportMisses uint64
	HashHits, HashMisses     uint64
	Evictions, Corrupt       uint64
}

// OpenStore opens (creating if needed) a cache under dir.
func OpenStore(dir string) (*Store, error) {
	s := &Store{dir: filepath.Join(dir, storeVersion)}
	for _, sub := range []string{"hashes", "reports"} {
		if err := os.MkdirAll(filepath.Join(s.dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("open cache: %w", err)
		}
	}
	return s, nil
}

// OpenMemStore returns a store with no backing directory: every entry
// lives in memory and dies with the process. It serves the daemon's
// "keep warm across requests" role when the operator has not asked for
// cross-restart persistence.
func OpenMemStore() *Store {
	return &Store{memo: &sync.Map{}}
}

// EnableMemo layers a write-through in-memory copy over a disk-backed
// store: every entry read from or written to disk is also kept in
// memory, and later lookups are served from there without touching the
// filesystem. Call it once, before lookups begin.
func (s *Store) EnableMemo() {
	if s.memo == nil {
		s.memo = &sync.Map{}
	}
}

// SetMaxReports bounds the number of report entries kept on disk;
// 0 (the default) means unlimited. When the bound is exceeded the
// oldest entries (by modification time) are evicted.
func (s *Store) SetMaxReports(n int) { atomic.StoreInt64(&s.maxReports, int64(n)) }

// Stats snapshots the counters.
func (s *Store) Stats() StoreStats {
	return StoreStats{
		ReportHits: s.reportHits.Load(), ReportMisses: s.reportMisses.Load(),
		HashHits: s.hashHits.Load(), HashMisses: s.hashMisses.Load(),
		Evictions: s.evictions.Load(), Corrupt: s.corrupt.Load(),
	}
}

// HashEntry records one device's semantic hash, keyed by the digest of
// its raw configuration bytes. Hostname rides along so a warm run can
// render pair names and reports without re-parsing the file.
type HashEntry struct {
	Version    int
	ContentSum string
	Hash       string
	Hostname   string
	Fallback   bool
}

// hashEntryVersion guards HashEntry's JSON shape.
const hashEntryVersion = 1

// ContentSum digests raw configuration bytes for hash-entry keys.
func ContentSum(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// GetHash looks up the semantic hash recorded for raw-config digest
// contentSum.
func (s *Store) GetHash(contentSum string) (HashEntry, bool) {
	memoKey := "hash\x00" + contentSum
	if s.memo != nil {
		if v, ok := s.memo.Load(memoKey); ok {
			s.hashHits.Add(1)
			s.observe("hit", "hash")
			return v.(HashEntry), true
		}
	}
	var e HashEntry
	if s.dir == "" {
		s.hashMisses.Add(1)
		s.observe("miss", "hash")
		return e, false
	}
	path := s.path("hashes", "hash", contentSum)
	body, ok := s.readEntry(path, "hash")
	if !ok {
		s.hashMisses.Add(1)
		s.observe("miss", "hash")
		return e, false
	}
	if err := json.Unmarshal(body, &e); err != nil ||
		e.Version != hashEntryVersion || e.ContentSum != contentSum {
		s.discard(path, "hash")
		s.hashMisses.Add(1)
		s.observe("miss", "hash")
		return HashEntry{}, false
	}
	if s.memo != nil {
		s.memo.Store(memoKey, e)
	}
	s.hashHits.Add(1)
	s.observe("hit", "hash")
	return e, true
}

// PutHash records a device's semantic hash.
func (s *Store) PutHash(contentSum, hash, hostname string, fallback bool) {
	e := HashEntry{
		Version: hashEntryVersion, ContentSum: contentSum,
		Hash: hash, Hostname: hostname, Fallback: fallback,
	}
	if s.memo != nil {
		s.memo.Store("hash\x00"+contentSum, e)
	}
	if s.dir == "" {
		return
	}
	body, err := json.Marshal(e)
	if err != nil {
		return
	}
	s.writeEntry(s.path("hashes", "hash", contentSum), body)
}

// reportEntry wraps a report payload with its full key, so a filename
// collision (or a moved file) is detected rather than served.
type reportEntry struct {
	Hash1, Hash2 string
	OptionsFP    string
	Report       json.RawMessage
}

// GetReport looks up the finished report for the ordered pair of device
// hashes under the given options fingerprint. The returned report is
// shared (possibly with other concurrent callers) and must not be
// mutated; RespanReport already copies.
func (s *Store) GetReport(hash1, hash2, optsFP string) (*core.Report, bool) {
	memoKey := "report\x00" + hash1 + "\x00" + hash2 + "\x00" + optsFP
	if s.memo != nil {
		if v, ok := s.memo.Load(memoKey); ok {
			s.reportHits.Add(1)
			s.observe("hit", "report")
			return v.(*core.Report), true
		}
	}
	if s.dir == "" {
		s.reportMisses.Add(1)
		s.observe("miss", "report")
		return nil, false
	}
	path := s.path("reports", "report", hash1, hash2, optsFP)
	body, ok := s.readEntry(path, "report")
	if !ok {
		s.reportMisses.Add(1)
		s.observe("miss", "report")
		return nil, false
	}
	var e reportEntry
	if err := json.Unmarshal(body, &e); err != nil ||
		e.Hash1 != hash1 || e.Hash2 != hash2 || e.OptionsFP != optsFP {
		s.discard(path, "report")
		s.reportMisses.Add(1)
		s.observe("miss", "report")
		return nil, false
	}
	rep, err := DecodeReport(e.Report)
	if err != nil {
		s.discard(path, "report")
		s.reportMisses.Add(1)
		s.observe("miss", "report")
		return nil, false
	}
	if s.memo != nil {
		s.memo.Store(memoKey, rep)
	}
	s.reportHits.Add(1)
	s.observe("hit", "report")
	return rep, true
}

// PutReport stores a finished report under its key. Failures are
// silent — the cache is an accelerator, never a correctness dependency.
func (s *Store) PutReport(hash1, hash2, optsFP string, rep *core.Report) {
	payload, err := EncodeReport(rep)
	if err != nil {
		return
	}
	if s.memo != nil {
		// Memoize the decoded round-trip, not rep itself: callers hand in
		// reports they may keep using, and serving the same canonical
		// decode for puts and gets keeps warm and cold paths identical.
		if dec, derr := DecodeReport(payload); derr == nil {
			s.memo.Store("report\x00"+hash1+"\x00"+hash2+"\x00"+optsFP, dec)
		}
	}
	if s.dir == "" {
		return
	}
	body, err := json.Marshal(reportEntry{
		Hash1: hash1, Hash2: hash2, OptionsFP: optsFP, Report: payload,
	})
	if err != nil {
		return
	}
	s.writeEntry(s.path("reports", "report", hash1, hash2, optsFP), body)
	// Amortize the directory scan: check the bound once per batch of
	// puts, not on every write.
	if max := atomic.LoadInt64(&s.maxReports); max > 0 && s.reportPuts.Add(1)%32 == 0 {
		s.evictReports(int(max))
	}
}

// EvictNow applies the report bound immediately (tests and shutdown).
func (s *Store) EvictNow() {
	if max := atomic.LoadInt64(&s.maxReports); max > 0 {
		s.evictReports(int(max))
	}
}

func (s *Store) evictReports(max int) {
	if s.dir == "" {
		return
	}
	s.evictMu.Lock()
	defer s.evictMu.Unlock()
	dir := filepath.Join(s.dir, "reports")
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) <= max {
		return
	}
	type aged struct {
		name string
		info fs.FileInfo
	}
	var files []aged
	for _, e := range entries {
		info, err := e.Info()
		if err != nil || !info.Mode().IsRegular() {
			continue
		}
		files = append(files, aged{e.Name(), info})
	}
	if len(files) <= max {
		return
	}
	sort.Slice(files, func(i, j int) bool {
		if !files[i].info.ModTime().Equal(files[j].info.ModTime()) {
			return files[i].info.ModTime().Before(files[j].info.ModTime())
		}
		return files[i].name < files[j].name
	})
	for _, f := range files[:len(files)-max] {
		if os.Remove(filepath.Join(dir, f.name)) == nil {
			s.evictions.Add(1)
			s.observe("evict", "report")
		}
	}
}

// path derives an entry's filename from its key parts.
func (s *Store) path(sub, kind string, parts ...string) string {
	h := sha256.New()
	h.Write([]byte(kind))
	for _, p := range parts {
		h.Write([]byte{0})
		h.Write([]byte(p))
	}
	return filepath.Join(s.dir, sub, hex.EncodeToString(h.Sum(nil))+".json")
}

// readEntry reads and verifies one cache file. Any deviation — missing,
// truncated, bad magic, wrong version, checksum mismatch — is a miss;
// non-missing deviations also delete the file and count as corruption.
// kind labels the entry ("hash", "report") for the observer hook.
func (s *Store) readEntry(path, kind string) ([]byte, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			s.discard(path, kind)
		}
		return nil, false
	}
	header, body, found := strings.Cut(string(data), "\n")
	fields := strings.Fields(header)
	if !found || len(fields) != 3 || fields[0] != entryMagic || fields[1] != storeVersion {
		s.discard(path, kind)
		return nil, false
	}
	sum := sha256.Sum256([]byte(body))
	if fields[2] != hex.EncodeToString(sum[:]) {
		s.discard(path, kind)
		return nil, false
	}
	return []byte(body), true
}

// writeEntry atomically installs a cache file: write a temp file in the
// same directory, fsync-free rename into place. Last writer wins.
func (s *Store) writeEntry(path string, body []byte) {
	sum := sha256.Sum256(body)
	content := fmt.Sprintf("%s %s %s\n%s", entryMagic, storeVersion, hex.EncodeToString(sum[:]), body)
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	_, werr := tmp.WriteString(content)
	cerr := tmp.Close()
	if werr != nil || cerr != nil || os.Rename(name, path) != nil {
		os.Remove(name)
	}
}

// discard removes a bad entry and counts the corruption.
func (s *Store) discard(path, kind string) {
	if os.Remove(path) == nil {
		s.corrupt.Add(1)
		s.observe("corrupt", kind)
	}
}

// OptionsFingerprint digests the report-affecting comparison options for
// the report-cache key. Only settings that change report bytes
// participate: the component set and the exhaustive-communities mode.
// Workers, Reorder, and GC are deliberately excluded — reports are
// byte-identical across them (pinned by the PR 6 golden-corpus mode
// sweep) — so a cache warmed under one execution mode serves all others.
func OptionsFingerprint(opts core.Options) string {
	comps := make([]string, len(opts.Components))
	for i, c := range opts.Components {
		comps[i] = string(c)
	}
	sort.Strings(comps)
	key := fmt.Sprintf("opts-v1|components=%s|exhaustive=%t",
		strings.Join(comps, ","), opts.ExhaustiveCommunities)
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:8])
}
