package fleet

import (
	"strings"
	"testing"

	"repro/internal/cisco"
	"repro/internal/ir"
)

const hashBaseCfg = `hostname alpha
!
interface GigabitEthernet0/0
 ip address 10.0.1.1 255.255.255.0
 ip access-group EDGE in
!
ip prefix-list NETS permit 10.9.0.0/16 le 24
ip prefix-list NETS permit 10.10.0.0/16 le 24
!
ip community-list standard COMM permit 65000:100
!
route-map IMPORT deny 10
 match community COMM
route-map IMPORT permit 20
 match ip address NETS
 set local-preference 120
!
ip access-list extended EDGE
 10 deny ip 192.168.1.0 0.0.0.255 any
 20 permit ip any any
!
ip route 10.50.0.0 255.255.0.0 10.0.1.254
!
router bgp 65001
 bgp router-id 10.0.1.1
 neighbor 10.0.1.254 remote-as 64600
 neighbor 10.0.1.254 route-map IMPORT in
 neighbor 10.0.1.254 send-community
`

func parseCisco(t *testing.T, file, text string) *ir.Config {
	t.Helper()
	cfg, err := cisco.Parse(file, text)
	if err != nil {
		t.Fatalf("parse %s: %v", file, err)
	}
	return cfg
}

// TestDeviceHashIdentity: hostname and file name are the only identity a
// device may differ in and still hash equal.
func TestDeviceHashIdentity(t *testing.T) {
	h := NewHasher()
	a := parseCisco(t, "alpha.cfg", hashBaseCfg)
	b := parseCisco(t, "beta.cfg", strings.Replace(hashBaseCfg, "hostname alpha", "hostname beta", 1))
	ha, fa := h.DeviceHash(a)
	hb, fb := h.DeviceHash(b)
	if fa || fb {
		t.Fatal("unexpected intensional fallback")
	}
	if ha != hb {
		t.Fatalf("hostname/file rename changed hash:\n%s\n%s", ha, hb)
	}
	// Stability across Hasher instances (fresh factories).
	hc, _ := NewHasher().DeviceHash(a)
	if hc != ha {
		t.Fatalf("hash not stable across hashers: %s vs %s", hc, ha)
	}
}

// TestDeviceHashSensitivity: every report-affecting edit must change the
// hash — semantic edits, pure text movement (line numbers and span text
// reach reports), and referenced-list edits invisible in the clause text.
func TestDeviceHashSensitivity(t *testing.T) {
	h := NewHasher()
	base, _ := h.DeviceHash(parseCisco(t, "a.cfg", hashBaseCfg))
	edits := map[string][2]string{
		"prefix-list semantics": {"10.9.0.0/16 le 24", "10.9.0.0/16 le 25"},
		"community list":        {"65000:100", "65000:101"},
		"local-pref":            {"local-preference 120", "local-preference 130"},
		"acl line":              {"192.168.1.0", "192.168.2.0"},
		"static route":          {"10.50.0.0", "10.51.0.0"},
		"bgp neighbor":          {"remote-as 64600", "remote-as 64601"},
		"line movement":         {"!\nip route", "!\n!\nip route"},
		"span text":             {" description", " Description"},
	}
	for name, ed := range edits {
		text := strings.Replace(hashBaseCfg, ed[0], ed[1], 1)
		if name == "span text" {
			text = strings.Replace(hashBaseCfg,
				"interface GigabitEthernet0/0", "interface  GigabitEthernet0/0", 1)
		}
		if text == hashBaseCfg {
			t.Fatalf("%s: edit did not apply", name)
		}
		got, _ := h.DeviceHash(parseCisco(t, "a.cfg", text))
		if got == base {
			t.Errorf("%s: edit did not change the hash", name)
		}
	}
}

// TestDeviceHashFallback: a node-budget abort mid-compile falls back to
// the fully intensional hash — deterministic, distinct from the semantic
// mode, and still hostname-independent.
func TestDeviceHashFallback(t *testing.T) {
	old := hashNodeBudget
	hashNodeBudget = 64
	defer func() { hashNodeBudget = old }()

	a := parseCisco(t, "a.cfg", hashBaseCfg)
	ha, fell := NewHasher().DeviceHash(a)
	if !fell {
		t.Skip("budget of 64 nodes did not trigger a fallback on this encoding")
	}
	hb, _ := NewHasher().DeviceHash(a)
	if ha != hb {
		t.Fatalf("fallback hash not deterministic: %s vs %s", ha, hb)
	}
	b := parseCisco(t, "b.cfg", strings.Replace(hashBaseCfg, "hostname alpha", "hostname beta", 1))
	hc, _ := NewHasher().DeviceHash(b)
	if hc != ha {
		t.Fatal("fallback hash depends on hostname")
	}

	hashNodeBudget = old
	semantic, fell2 := NewHasher().DeviceHash(a)
	if fell2 {
		t.Fatal("full budget still falls back")
	}
	if semantic == ha {
		t.Fatal("semantic and fallback hashes collide")
	}
}

// TestDeviceHashManyDevices: the shared-factory reset path (hashing far
// more devices than the arena threshold nominally allows) keeps hashes
// stable.
func TestDeviceHashManyDevices(t *testing.T) {
	h := NewHasher()
	want, _ := h.DeviceHash(parseCisco(t, "a.cfg", hashBaseCfg))
	for i := 0; i < 50; i++ {
		text := strings.Replace(hashBaseCfg, "65000:100", "65000:100\nip community-list standard COMM permit 65000:200", 1)
		h.DeviceHash(parseCisco(t, "x.cfg", text))
		got, _ := h.DeviceHash(parseCisco(t, "a.cfg", hashBaseCfg))
		if got != want {
			t.Fatalf("iteration %d: hash drifted under interleaved hashing", i)
		}
	}
}
