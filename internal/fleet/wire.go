// Report wire format: a finished pair report serialized to JSON for the
// persistent cache, and the respan operation that retargets a cached (or
// representative) report at a different device pair.
//
// Everything a report renders is plain exported data — prefix ranges,
// community terms, example routes/packets, text spans, structural
// differences — so encoding/json round-trips it exactly. The only pieces
// deliberately dropped are Report.Stats (execution metadata, excluded
// from deterministic output by design) and the full parsed Configs:
// rendering reads only Hostname (the router names) and the span Files,
// so stub configs carrying those two fields reproduce the exact bytes.
package fleet

import (
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/structdiff"
)

// payloadVersion guards the JSON shape; bump on any field change so old
// cache entries self-invalidate.
const payloadVersion = 1

type reportPayload struct {
	Version      int
	Host1, Host2 string
	File1, File2 string

	RouteMapDiffs []core.RouteMapDiff
	ACLDiffs      []core.ACLPairDiff
	Structural    []structdiff.Difference
	Unmatched1    []string
	Unmatched2    []string
}

// EncodeReport serializes rep for the persistent cache.
func EncodeReport(rep *core.Report) ([]byte, error) {
	p := reportPayload{
		Version:       payloadVersion,
		RouteMapDiffs: rep.RouteMapDiffs,
		ACLDiffs:      rep.ACLDiffs,
		Structural:    rep.Structural,
		Unmatched1:    rep.UnmatchedACLs1,
		Unmatched2:    rep.UnmatchedACLs2,
	}
	if rep.Config1 != nil {
		p.Host1, p.File1 = rep.Config1.Hostname, rep.Config1.File
	}
	if rep.Config2 != nil {
		p.Host2, p.File2 = rep.Config2.Hostname, rep.Config2.File
	}
	return json.Marshal(p)
}

// DecodeReport reconstructs a report from EncodeReport output. The
// configs are stubs carrying only Hostname and File — exactly what
// rendering consumes. A version mismatch is an error (the caller treats
// it as a cache miss).
func DecodeReport(data []byte) (*core.Report, error) {
	var p reportPayload
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, err
	}
	if p.Version != payloadVersion {
		return nil, fmt.Errorf("cache payload version %d, want %d", p.Version, payloadVersion)
	}
	return &core.Report{
		Config1:        &ir.Config{Hostname: p.Host1, File: p.File1},
		Config2:        &ir.Config{Hostname: p.Host2, File: p.File2},
		RouteMapDiffs:  p.RouteMapDiffs,
		ACLDiffs:       p.ACLDiffs,
		Structural:     p.Structural,
		UnmatchedACLs1: p.Unmatched1,
		UnmatchedACLs2: p.Unmatched2,
	}, nil
}

// RespanReport returns a copy of rep retargeted at the pair (c1, c2):
// the configs are swapped for the new endpoints and every side-1/side-2
// text span's File is rewritten to the corresponding endpoint's file.
// Line numbers and text are untouched — equal device hashes guarantee
// the member's configuration has the same lines at the same positions.
// rep itself is never mutated (it may be a shared representative).
func RespanReport(rep *core.Report, c1, c2 *ir.Config) *core.Report {
	out := &core.Report{
		Config1:        c1,
		Config2:        c2,
		RouteMapDiffs:  append([]core.RouteMapDiff(nil), rep.RouteMapDiffs...),
		ACLDiffs:       append([]core.ACLPairDiff(nil), rep.ACLDiffs...),
		Structural:     append([]structdiff.Difference(nil), rep.Structural...),
		UnmatchedACLs1: rep.UnmatchedACLs1,
		UnmatchedACLs2: rep.UnmatchedACLs2,
	}
	for i := range out.RouteMapDiffs {
		d := &out.RouteMapDiffs[i]
		d.Text1 = respan(d.Text1, c1.File)
		d.Text2 = respan(d.Text2, c2.File)
	}
	for i := range out.ACLDiffs {
		d := &out.ACLDiffs[i]
		d.Text1 = respan(d.Text1, c1.File)
		d.Text2 = respan(d.Text2, c2.File)
	}
	for i := range out.Structural {
		d := &out.Structural[i]
		d.Span1 = respan(d.Span1, c1.File)
		d.Span2 = respan(d.Span2, c2.File)
	}
	return out
}

// respan rewrites a span's file, preserving zero-ness: a span that never
// carried a file (and would render as no location) stays that way.
func respan(s ir.TextSpan, file string) ir.TextSpan {
	if s.File == "" {
		return s
	}
	s.File = file
	return s
}
