// Package fleet implements Campion's fleet-scale audit layer: semantic
// content-addressing of whole device configurations, equivalence-class
// clustering, and a persistent on-disk cache of compiled-policy
// fingerprints and finished pair reports.
//
// The core primitive is DeviceHash: a canonical digest of everything
// about one configuration that can influence a diff report against any
// counterpart — except the device's hostname and file name, which the
// expansion layer substitutes when a class representative's report is
// replayed for another member pair. Two devices with equal hashes are
// interchangeable in any comparison: Diff(A, C) and Diff(B, C) produce
// byte-identical reports modulo hostname and span-file substitution.
//
// The hash mixes two kinds of material:
//
//   - Semantic: prefix-space route-map matches and ACL lines are
//     compiled to BDDs and the reduced DAG is hashed (stable DFS over
//     local node IDs per root). BDDs are canonical per variable order,
//     and the prefix/next-hop/packet dimensions occupy fixed variable
//     positions independent of any configuration's vocabulary, so DAG
//     equality here is a sound semantic equality test that survives
//     being placed next to any third configuration.
//   - Intensional: everything whose pair-level encoding depends on the
//     counterpart's vocabulary (community, as-path, MED, tag atoms) or
//     that reaches the report as text (clause spans, names, structural
//     fields) is serialized from the IR directly. Vocabulary-sensitive
//     dimensions cannot be BDD-hashed per device: equality under one
//     atom set does not imply equality once a third config's regexes
//     atomize the space more finely.
//
// Chains that fail to compile (node-budget abort or a parser corner that
// panics the encoder) fall back to a fully intensional hash, marked with
// a distinct mode byte so a fallback hash never collides with a semantic
// one.
package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"io"
	"sort"

	"repro/internal/bdd"
	"repro/internal/headerloc"
	"repro/internal/ir"
	"repro/internal/netaddr"
	"repro/internal/symbolic"
)

// hashVersion is mixed into every device hash; bump it whenever the
// serialization below changes so stale persisted hashes self-invalidate.
const hashVersion = "campion-device-hash-v1"

// hashNodeBudget bounds the BDD nodes the hashing encodings may hold
// before a compile aborts into the intensional fallback. Hashing only
// compiles individual prefix lists and ACL lines — never products — so
// ordinary configurations stay far below this. A var so tests can force
// the fallback path.
var hashNodeBudget = 1 << 22

// resetNodeThreshold is the arena size past which the shared hashing
// factories are rebuilt. The per-encoding memo tables key on IR pointers,
// so nothing is reused across devices anyway; rebuilding keeps a long
// fleet sweep's memory flat.
const resetNodeThreshold = 1 << 20

// Hasher computes device hashes, amortizing its BDD factories across
// calls. It is single-goroutine state: one Hasher per worker.
type Hasher struct {
	renc *symbolic.RouteEncoding
	penc *symbolic.PacketEncoding
}

// NewHasher returns a Hasher with fresh encodings. The route encoding is
// built with no configurations: only the vocabulary-independent prefix,
// length, and next-hop variables are ever compiled on it, and those
// occupy fixed positions regardless of vocabulary, so every Hasher
// produces identical hashes.
func NewHasher() *Hasher {
	h := &Hasher{}
	h.rebuild()
	return h
}

func (h *Hasher) rebuild() {
	h.renc = symbolic.NewRouteEncoding()
	h.renc.F.SetInterrupt(hashNodeBudget, func() error { return nil })
	h.penc = symbolic.NewPacketEncoding()
	h.penc.F.SetInterrupt(hashNodeBudget, func() error { return nil })
}

// DeviceHash is a one-shot convenience over a throwaway Hasher.
func DeviceHash(cfg *ir.Config) (string, bool) {
	return NewHasher().DeviceHash(cfg)
}

// DeviceHash returns the semantic content-address of cfg and whether the
// intensional fallback was used. Hostname and every TextSpan.File are
// excluded — they are the only per-device identity the expansion layer
// rewrites — and everything else that can reach a report is pinned.
func (h *Hasher) DeviceHash(cfg *ir.Config) (string, bool) {
	if h.renc.F.Stats().Nodes > resetNodeThreshold {
		h.rebuild()
	}
	if sum, ok := h.tryHash(cfg, true); ok {
		return sum, false
	}
	// A compile aborted mid-stream; the factories may hold garbage from
	// the unwound computation, so rebuild before anyone hashes on them
	// again. The fallback never compiles, so it cannot abort.
	h.rebuild()
	sum, _ := h.tryHash(cfg, false)
	return sum, true
}

// tryHash runs one full serialization pass. With semantic=true a
// node-budget abort (or any encoder panic) is recovered and reported as
// !ok; intensional passes cannot fail.
func (h *Hasher) tryHash(cfg *ir.Config, semantic bool) (sum string, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			if semantic {
				sum, ok = "", false
				return
			}
			panic(r)
		}
	}()
	w := &hw{h: sha256.New()}
	w.str(hashVersion)
	if semantic {
		w.h.Write([]byte{'S'})
	} else {
		w.h.Write([]byte{'I'})
	}
	// The counterpart-facing vocabulary this device contributes: every
	// community literal/regex, as-path regex, and MED/tag constant it
	// would add to a pair encoding.
	w.str(symbolic.VocabFingerprint(cfg))
	// The ddNF presentation vocabulary: HeaderLocalize's output terms are
	// built over the prefix ranges mentioned by BOTH configs of a pair,
	// so the multiset this device contributes is report-affecting even
	// when the match semantics are unchanged.
	ranges := headerloc.ConfigPrefixRanges(cfg)
	sort.Slice(ranges, func(i, j int) bool { return comparePrefixRange(ranges[i], ranges[j]) < 0 })
	w.u64(uint64(len(ranges)))
	for _, r := range ranges {
		w.prefixRange(r)
	}
	w.u64(uint64(cfg.Vendor))
	h.hashRouteMaps(w, cfg, semantic)
	h.hashACLs(w, cfg, semantic)
	hashStructural(w, cfg)
	return hex.EncodeToString(w.h.Sum(nil)), true
}

func (h *Hasher) hashRouteMaps(w *hw, cfg *ir.Config, semantic bool) {
	names := sortedKeys(cfg.RouteMaps)
	w.u64(uint64(len(names)))
	for _, name := range names {
		rm := cfg.RouteMaps[name]
		w.str(name)
		w.u64(uint64(rm.DefaultAction))
		w.span(rm.Span)
		w.u64(uint64(len(rm.Clauses)))
		for _, cl := range rm.Clauses {
			w.u64(uint64(cl.Seq))
			w.str(cl.Name)
			w.u64(uint64(cl.Action))
			w.span(cl.Span)
			w.u64(uint64(len(cl.Matches)))
			for _, m := range cl.Matches {
				h.hashMatch(w, cfg, m, semantic)
			}
			w.u64(uint64(len(cl.Sets)))
			for _, s := range cl.Sets {
				hashSet(w, cfg, s)
			}
		}
	}
}

// hashMatch pins one match condition. Prefix-space matches are hashed
// semantically (their BDDs live entirely in the fixed prefix/next-hop
// variable block, so DAG equality is stable under vocabulary extension);
// vocabulary-sensitive matches are pinned intensionally, inlining the
// referenced list contents so a list edit changes the hash even though
// the clause text did not.
func (h *Hasher) hashMatch(w *hw, cfg *ir.Config, m ir.Match, semantic bool) {
	switch m := m.(type) {
	case ir.MatchPrefixList, ir.MatchPrefixRanges, ir.MatchPrefixListFilter, ir.MatchNextHop:
		w.str(m.String())
		if semantic {
			w.h.Write([]byte{'B'})
			writeDAG(w, h.renc.F, h.renc.MatchBDD(cfg, m))
			return
		}
		w.h.Write([]byte{'i'})
		switch m := m.(type) {
		case ir.MatchPrefixList:
			for _, name := range m.Lists {
				hashPrefixList(w, cfg.PrefixLists[name])
			}
		case ir.MatchPrefixListFilter:
			hashPrefixList(w, cfg.PrefixLists[m.List])
		case ir.MatchNextHop:
			for _, name := range m.Lists {
				hashPrefixList(w, cfg.PrefixLists[name])
			}
		case ir.MatchPrefixRanges:
			for _, r := range m.Ranges {
				w.prefixRange(r)
			}
		}
	case ir.MatchCommunity:
		w.str(m.String())
		for _, name := range m.Lists {
			hashCommunityList(w, cfg.CommunityLists[name])
		}
	case ir.MatchASPath:
		w.str(m.String())
		for _, name := range m.Lists {
			hashASPathList(w, cfg.ASPathLists[name])
		}
	default:
		// MED, tag, protocol: the match value is the whole content.
		w.str(m.String())
	}
}

// hashSet pins one set action. DeleteCommunity's behavior depends on the
// referenced community list, not just its name, so the list contents are
// inlined.
func hashSet(w *hw, cfg *ir.Config, s ir.SetAction) {
	w.str(s.String())
	if del, ok := s.(ir.DeleteCommunity); ok {
		hashCommunityList(w, cfg.CommunityLists[del.List])
	}
}

func hashPrefixList(w *hw, l *ir.PrefixList) {
	if l == nil {
		w.h.Write([]byte{0})
		return
	}
	w.u64(uint64(len(l.Entries)))
	for _, e := range l.Entries {
		w.u64(uint64(e.Action))
		w.prefixRange(e.Range)
	}
}

func hashCommunityList(w *hw, l *ir.CommunityList) {
	if l == nil {
		w.h.Write([]byte{0})
		return
	}
	w.u64(uint64(len(l.Entries)))
	for _, e := range l.Entries {
		w.u64(uint64(e.Action))
		w.u64(uint64(len(e.Conjuncts)))
		for _, c := range e.Conjuncts {
			w.str(c.Literal)
			w.str(c.Regex)
		}
	}
}

func hashASPathList(w *hw, l *ir.ASPathList) {
	if l == nil {
		w.h.Write([]byte{0})
		return
	}
	w.u64(uint64(len(l.Entries)))
	for _, e := range l.Entries {
		w.u64(uint64(e.Action))
		w.str(e.Regex)
	}
}

func (h *Hasher) hashACLs(w *hw, cfg *ir.Config, semantic bool) {
	names := sortedKeys(cfg.ACLs)
	w.u64(uint64(len(names)))
	for _, name := range names {
		acl := cfg.ACLs[name]
		w.str(name)
		w.span(acl.Span)
		w.u64(uint64(len(acl.Lines)))
		for _, l := range acl.Lines {
			w.u64(uint64(l.Seq))
			w.u64(uint64(l.Action))
			w.span(l.Span)
			if semantic {
				// The packet encoding has no vocabulary at all — a fixed
				// 5-tuple+flags variable layout — so a line's BDD is
				// canonical across every device.
				w.h.Write([]byte{'B'})
				writeDAG(w, h.penc.F, h.penc.LineBDD(l))
				continue
			}
			w.h.Write([]byte{'i'})
			w.str(l.Protocol.String())
			w.u64(uint64(len(l.Src)))
			for _, wc := range l.Src {
				w.u64(uint64(wc.Addr))
				w.u64(uint64(wc.Mask))
			}
			w.u64(uint64(len(l.Dst)))
			for _, wc := range l.Dst {
				w.u64(uint64(wc.Addr))
				w.u64(uint64(wc.Mask))
			}
			w.portRanges(l.SrcPorts)
			w.portRanges(l.DstPorts)
			w.b(l.Established)
			w.i64(int64(l.ICMPType))
		}
	}
}

// hashStructural pins everything StructuralDiff (and policy matching)
// reads: interfaces, static routes, BGP, OSPF, and admin distances —
// excluding Hostname and span files.
func hashStructural(w *hw, cfg *ir.Config) {
	w.u64(uint64(len(cfg.Interfaces)))
	for _, fi := range cfg.Interfaces {
		w.str(fi.Name)
		w.u64(uint64(fi.Address))
		w.prefix(fi.Subnet)
		w.b(fi.HasAddress)
		w.str(fi.Description)
		w.b(fi.Shutdown)
		w.str(fi.ACLIn)
		w.str(fi.ACLOut)
		w.i64(int64(fi.OSPFCost))
		w.i64(fi.OSPFArea)
		w.b(fi.OSPFPassive)
		w.b(fi.OSPFEnabled)
		w.span(fi.Span)
	}
	w.u64(uint64(len(cfg.StaticRoutes)))
	for _, r := range cfg.StaticRoutes {
		w.prefix(r.Prefix)
		w.u64(uint64(r.NextHop))
		w.b(r.HasNextHop)
		w.str(r.Interface)
		w.i64(int64(r.AdminDistance))
		w.i64(r.Tag)
		w.b(r.HasTag)
		w.span(r.Span)
	}
	w.b(cfg.BGP != nil)
	if b := cfg.BGP; b != nil {
		w.i64(b.ASN)
		w.u64(uint64(b.RouterID))
		w.span(b.Span)
		w.u64(uint64(len(b.Networks)))
		for _, p := range b.Networks {
			w.prefix(p)
		}
		hashRedistributions(w, b.Redistribute)
		addrs := b.NeighborAddrs()
		w.u64(uint64(len(addrs)))
		for _, a := range addrs {
			n := b.Neighbors[a]
			w.str(a)
			w.u64(uint64(n.Addr))
			w.i64(n.RemoteAS)
			w.str(n.Description)
			w.strs(n.ImportPolicies)
			w.strs(n.ExportPolicies)
			w.b(n.RouteReflectorClient)
			w.b(n.SendCommunity)
			w.b(n.NextHopSelf)
			w.b(n.EBGPMultihop)
			w.b(n.Shutdown)
			w.i64(n.LocalAS)
			w.i64(n.Weight)
			w.span(n.Span)
		}
	}
	w.b(cfg.OSPF != nil)
	if o := cfg.OSPF; o != nil {
		w.i64(int64(o.ProcessID))
		w.u64(uint64(o.RouterID))
		w.span(o.Span)
		hashRedistributions(w, o.Redistribute)
		names := o.InterfaceNames()
		w.u64(uint64(len(names)))
		for _, name := range names {
			oi := o.Interfaces[name]
			w.str(name)
			w.i64(int64(oi.Cost))
			w.i64(oi.Area)
			w.b(oi.Passive)
			w.i64(int64(oi.HelloInterval))
			w.i64(int64(oi.DeadInterval))
			w.str(oi.NetworkType)
			w.prefix(oi.Subnet)
			w.span(oi.Span)
		}
	}
	protos := make([]int, 0, len(cfg.AdminDistances))
	for p := range cfg.AdminDistances {
		protos = append(protos, int(p))
	}
	sort.Ints(protos)
	w.u64(uint64(len(protos)))
	for _, p := range protos {
		w.u64(uint64(p))
		w.i64(int64(cfg.AdminDistances[ir.Protocol(p)]))
		w.b(cfg.ExplicitDistances[ir.Protocol(p)])
	}
	explicit := 0
	for _, v := range cfg.ExplicitDistances {
		if v {
			explicit++
		}
	}
	w.u64(uint64(explicit))
	w.u64(uint64(len(cfg.Unrecognized)))
	for _, s := range cfg.Unrecognized {
		w.span(s)
	}
}

func hashRedistributions(w *hw, rs []ir.Redistribution) {
	w.u64(uint64(len(rs)))
	for _, r := range rs {
		w.u64(uint64(r.From))
		w.str(r.RouteMap)
		w.i64(r.Metric)
		w.span(r.Span)
	}
}

// writeDAG serializes the reduced BDD rooted at root into w in a
// canonical form: nodes are numbered by DFS discovery order (low before
// high) local to this root, each emitted once as (variable, lowRef,
// highRef), followed by the root reference. Refs carry the complement
// bit in their low bit; the terminal is id 0, so False renders as 0 and
// True as 1. Two roots serialize identically iff they denote the same
// boolean function under the factory's variable order — BDD canonicity.
func writeDAG(w *hw, f *bdd.Factory, root bdd.Node) {
	ids := map[bdd.Node]uint64{}
	next := uint64(1)
	var visit func(n bdd.Node) uint64
	visit = func(n bdd.Node) uint64 {
		c := uint64(n & 1)
		reg := n &^ 1
		if reg == bdd.False {
			return c
		}
		if id, ok := ids[reg]; ok {
			return id<<1 | c
		}
		lo := visit(f.Low(reg))
		hi := visit(f.High(reg))
		id := next
		next++
		ids[reg] = id
		w.u64(uint64(f.Level(reg)))
		w.u64(lo)
		w.u64(hi)
		return id<<1 | c
	}
	ref := visit(root)
	w.u64(ref)
}

// hw is a minimal length-prefixed binary writer over a running hash.
type hw struct {
	h   hash.Hash
	buf [binary.MaxVarintLen64]byte
}

func (w *hw) u64(v uint64) {
	n := binary.PutUvarint(w.buf[:], v)
	w.h.Write(w.buf[:n])
}

func (w *hw) i64(v int64) { w.u64(uint64(v)) }

func (w *hw) b(v bool) {
	if v {
		w.h.Write([]byte{1})
	} else {
		w.h.Write([]byte{0})
	}
}

func (w *hw) str(s string) {
	w.u64(uint64(len(s)))
	io.WriteString(w.h, s)
}

func (w *hw) strs(ss []string) {
	w.u64(uint64(len(ss)))
	for _, s := range ss {
		w.str(s)
	}
}

// span pins a text span's line numbers and raw text but not its file:
// reports render file:line locations, and the file name is exactly the
// per-device identity the expansion layer substitutes.
func (w *hw) span(s ir.TextSpan) {
	w.u64(uint64(s.StartLine))
	w.u64(uint64(s.EndLine))
	w.strs(s.Lines)
}

func (w *hw) prefix(p netaddr.Prefix) {
	w.u64(uint64(p.Addr))
	w.u64(uint64(p.Len))
}

func (w *hw) prefixRange(r netaddr.PrefixRange) {
	w.prefix(r.Prefix)
	w.u64(uint64(r.Lo))
	w.u64(uint64(r.Hi))
}

func (w *hw) portRanges(rs []netaddr.PortRange) {
	w.u64(uint64(len(rs)))
	for _, r := range rs {
		w.u64(uint64(r.Lo))
		w.u64(uint64(r.Hi))
	}
}

func comparePrefixRange(a, b netaddr.PrefixRange) int {
	switch {
	case a.Prefix.Addr != b.Prefix.Addr:
		if a.Prefix.Addr < b.Prefix.Addr {
			return -1
		}
		return 1
	case a.Prefix.Len != b.Prefix.Len:
		return int(a.Prefix.Len) - int(b.Prefix.Len)
	case a.Lo != b.Lo:
		return int(a.Lo) - int(b.Lo)
	default:
		return int(a.Hi) - int(b.Hi)
	}
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
