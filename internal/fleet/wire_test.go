package fleet

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/present"
)

func render(t *testing.T, rep *core.Report) (string, string) {
	t.Helper()
	var text bytes.Buffer
	if err := present.Format(&text, rep); err != nil {
		t.Fatalf("format: %v", err)
	}
	js, err := present.ToJSON(rep)
	if err != nil {
		t.Fatalf("json: %v", err)
	}
	return text.String(), string(js)
}

// TestReportWireRoundTrip: a report decoded from its wire form renders
// byte-identically to the original — text and JSON — even though the
// decoded report carries only stub configs.
func TestReportWireRoundTrip(t *testing.T) {
	rep := testReport(t)
	wantText, wantJSON := render(t, rep)

	data, err := EncodeReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeReport(data)
	if err != nil {
		t.Fatal(err)
	}
	gotText, gotJSON := render(t, got)
	if gotText != wantText {
		t.Fatalf("text rendering diverged:\n--- want ---\n%s\n--- got ---\n%s", wantText, gotText)
	}
	if gotJSON != wantJSON {
		t.Fatalf("JSON rendering diverged:\n--- want ---\n%s\n--- got ---\n%s", wantJSON, gotJSON)
	}
}

// TestRespanReport: retargeting rewrites hostnames and span files — and
// nothing else — and matches a from-scratch diff of the new pair.
func TestRespanReport(t *testing.T) {
	rep := testReport(t)
	// The "member" pair: same contents, different hostnames and files.
	m1 := parseCisco(t, "member1.cfg", strings.Replace(hashBaseCfg, "hostname alpha", "hostname m-one", 1))
	m2text := strings.Replace(
		strings.Replace(hashBaseCfg, "hostname alpha", "hostname m-two", 1),
		"local-preference 120", "local-preference 200", 1)
	m2 := parseCisco(t, "member2.cfg", m2text)

	want, err := core.Diff(m1, m2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantText, wantJSON := render(t, want)
	gotText, gotJSON := render(t, RespanReport(rep, m1, m2))
	if gotText != wantText {
		t.Fatalf("respanned text != naive member diff:\n--- want ---\n%s\n--- got ---\n%s", wantText, gotText)
	}
	if gotJSON != wantJSON {
		t.Fatalf("respanned JSON != naive member diff:\n--- want ---\n%s\n--- got ---\n%s", wantJSON, gotJSON)
	}

	// The original report is untouched (it may be a shared representative).
	if rep.Config1.Hostname != "alpha" {
		t.Fatal("RespanReport mutated its input")
	}
	for _, d := range rep.RouteMapDiffs {
		if d.Text1.File != "" && d.Text1.File != "a.cfg" {
			t.Fatal("RespanReport mutated input spans")
		}
	}
}

// TestRespanZeroSpan: spans with no location stay location-free (a file
// rewrite must not invent "file:0" locations).
func TestRespanZeroSpan(t *testing.T) {
	rep := &core.Report{
		Config1: &ir.Config{Hostname: "a", File: "a.cfg"},
		Config2: &ir.Config{Hostname: "b", File: "b.cfg"},
		RouteMapDiffs: []core.RouteMapDiff{{
			Text1: ir.TextSpan{},
			Text2: ir.TextSpan{File: "b.cfg", StartLine: 3, EndLine: 3, Lines: []string{"x"}},
		}},
	}
	c1 := &ir.Config{Hostname: "m1", File: "m1.cfg"}
	c2 := &ir.Config{Hostname: "m2", File: "m2.cfg"}
	out := RespanReport(rep, c1, c2)
	if loc := out.RouteMapDiffs[0].Text1.Location(); loc != "" {
		t.Fatalf("zero span gained a location: %q", loc)
	}
	if loc := out.RouteMapDiffs[0].Text2.Location(); loc != "m2.cfg:3" {
		t.Fatalf("span not retargeted: %q", loc)
	}
}
