package difftest

import (
	"testing"

	"repro/internal/aclgen"
	"repro/internal/campiontest"
	"repro/internal/cisco"
	"repro/internal/policygen"
	"repro/internal/semdiff"
	"repro/internal/symbolic"
)

// TestReorderDisjointClauses: swapping two adjacent clauses with
// disjoint guards must not change the policy's semantics.
func TestReorderDisjointClauses(t *testing.T) {
	swapped := 0
	for seed := uint64(0); seed < 40 && swapped < 10; seed++ {
		pair := policygen.Generate(policygen.Params{Seed: seed, Clauses: 8})
		cfg, err := cisco.Parse("c.cfg", pair.CiscoText)
		if err != nil {
			t.Fatal(err)
		}
		rm := cfg.RouteMaps[pair.PolicyName]
		rm2, ok := ReorderDisjointClauses(cfg, rm)
		if !ok {
			continue
		}
		swapped++
		enc := symbolic.NewRouteEncoding(cfg)
		diffs, err := semdiff.DiffRouteMaps(enc, cfg, rm, cfg, rm2)
		if err != nil {
			t.Fatal(err)
		}
		if len(diffs) != 0 {
			t.Errorf("seed %d: reordering disjoint clauses produced %d diff regions", seed, len(diffs))
		}
	}
	if swapped == 0 {
		t.Fatal("no generated policy had an adjacent disjoint clause pair; rewrite never exercised")
	}
	t.Logf("exercised %d disjoint swaps", swapped)
}

// TestRenamePrefixLists: renaming every prefix list (and rewriting the
// references) must be invisible to the semantic differ.
func TestRenamePrefixLists(t *testing.T) {
	cfg, err := campiontest.ParseCisco(campiontest.Figure1Cisco)
	if err != nil {
		t.Fatal(err)
	}
	renamed := RenamePrefixLists(cfg, "_X")
	if _, ok := renamed.PrefixLists["NETS_X"]; !ok {
		t.Fatal("prefix list NETS not renamed")
	}
	if _, ok := renamed.PrefixLists["NETS"]; ok {
		t.Fatal("old prefix-list name still present")
	}
	enc := symbolic.NewRouteEncoding(cfg, renamed)
	diffs, err := semdiff.DiffRouteMaps(enc, cfg, cfg.RouteMaps["POL"], renamed, renamed.RouteMaps["POL"])
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 0 {
		t.Fatalf("renaming prefix lists produced %d diff regions", len(diffs))
	}

	// Same property over generated policies, which reference their lists
	// via match ip address prefix-list.
	for seed := uint64(0); seed < 20; seed++ {
		pair := policygen.Generate(policygen.Params{Seed: seed, Clauses: 5})
		cfg, err := cisco.Parse("c.cfg", pair.CiscoText)
		if err != nil {
			t.Fatal(err)
		}
		renamed := RenamePrefixLists(cfg, "_RN")
		enc := symbolic.NewRouteEncoding(cfg, renamed)
		rm := cfg.RouteMaps[pair.PolicyName]
		diffs, err := semdiff.DiffRouteMaps(enc, cfg, rm, renamed, renamed.RouteMaps[pair.PolicyName])
		if err != nil {
			t.Fatal(err)
		}
		if len(diffs) != 0 {
			t.Errorf("seed %d: rename produced %d diff regions", seed, len(diffs))
		}
	}
}

// TestDuplicateACLLine: duplicating a line is a no-op under
// first-match-wins, so the rewritten ACL must stay equivalent.
func TestDuplicateACLLine(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		pair := aclgen.Generate(aclgen.Params{Seed: seed, Rules: 8})
		acl := pair.Cisco
		for i := 0; i < len(acl.Lines); i += 3 {
			dup := DuplicateACLLine(acl, i)
			if len(dup.Lines) != len(acl.Lines)+1 {
				t.Fatalf("seed %d: duplicate at %d: got %d lines, want %d",
					seed, i, len(dup.Lines), len(acl.Lines)+1)
			}
			enc := symbolic.NewPacketEncoding()
			if !semdiff.EquivalentACLs(enc, acl, dup) {
				t.Errorf("seed %d: duplicating line %d changed ACL semantics", seed, i)
			}
		}
	}
}
