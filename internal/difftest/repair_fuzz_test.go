package difftest

import (
	"context"
	"testing"
	"time"

	"repro/internal/cisco"
	"repro/internal/juniper"
	"repro/internal/policygen"
	"repro/internal/repair"
)

// FuzzRepair drives the repair search from raw fuzz input, mirroring
// FuzzRouteMapDifferential: the first 11 bytes parameterize an
// equivalent-by-construction cross-vendor pair, byte 11 selects a
// BGPFuzz-style mutation to inject into the Juniper side. Every repair
// the engine accepts is re-checked against the concrete oracle on an
// independent sample set — an accepted repair the oracle refutes means
// the symbolic re-diff and the interpreter disagree, and crashes the
// target.
func FuzzRepair(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 1, 3, 2, 0, 0})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 42, 2, 1, 0, 5})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 4, 3, 0, 11})
	f.Fuzz(func(t *testing.T, data []byte) {
		params := policygen.ParamsFromBytes(data)
		params.Differences = 0 // start equivalent; the mutation is the only fault
		mutSeed := uint64(0)
		if len(data) > 11 {
			mutSeed = uint64(data[11])
		}
		pair := policygen.Generate(params)
		c, err := cisco.Parse("c.cfg", pair.CiscoText)
		if err != nil {
			t.Skip()
		}
		j, err := juniper.Parse("j.cfg", pair.JuniperText)
		if err != nil {
			t.Skip()
		}
		if c.RouteMaps[pair.PolicyName] == nil || j.RouteMaps[pair.PolicyName] == nil {
			t.Skip()
		}
		mut := repair.PickMutation(j, pair.PolicyName, mutSeed)
		if mut == nil {
			t.Skip()
		}
		jm := j.ClonePolicy()
		if err := mut.Edit.Apply(jm); err != nil {
			t.Fatalf("params %+v: mutation %s failed to apply: %v", params, mut.Kind, err)
		}

		res, err := repair.Run(context.Background(), c, jm, repair.Options{
			Timeout: 20 * time.Second, Samples: 8, Seed: int64(params.Seed),
		})
		if err != nil {
			t.Fatalf("params %+v: Run: %v", params, err)
		}
		for _, pr := range res.Pairs {
			if pr.Err != nil {
				t.Errorf("params %+v mut %s: pair %s degraded: %v", params, mut.Kind, pr.Pair, pr.Err)
				continue
			}
			if pr.Repair != nil && !pr.Repair.Verified {
				t.Errorf("params %+v mut %s: accepted repair not marked verified: %s",
					params, mut.Kind, pr.Repair.Describe())
			}
		}
		if res.PatchedB == nil {
			return
		}
		// Engine-accepts / oracle-rejects is the crash condition: the
		// patched config must agree with A under the concrete interpreter
		// on fresh samples, not just the ones the search itself stored.
		if err := repair.VerifyEquivalent(c, res.PatchedB, repair.Options{
			Samples: 16, Seed: int64(params.Seed) + 1,
		}); err != nil {
			t.Errorf("params %+v mut %s: engine accepted repair, oracle rejects: %v",
				params, mut.Kind, err)
		}
	})
}
