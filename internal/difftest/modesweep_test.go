package difftest_test

import (
	"bytes"
	"testing"

	"repro/campion"
	"repro/internal/aclgen"
	"repro/internal/cisco"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/juniper"
	"repro/internal/policygen"
)

// render flattens a report the way a user sees it; byte equality here is
// the strongest identity the kernel modes promise.
func render(t *testing.T, rep *campion.Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := campion.Write(&buf, rep); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func modes() map[string]campion.Options {
	return map[string]campion.Options{
		"reorder": {Reorder: true},
		"striped": {Workers: 4},
		"gc":      {Workers: 1, GC: true, PolicyCache: core.NewPolicyCache()},
		"all":     {Workers: 4, Reorder: true, GC: true},
	}
}

// TestRouteMapModeSweep: over the generated route-map corpus, every
// kernel v3 mode (order search, factory GC, intra-pair striping, and
// their combination) renders byte-identical reports to the default
// engine. The oracle sweeps in this package check witness soundness;
// this one checks that the performance modes are invisible.
func TestRouteMapModeSweep(t *testing.T) {
	seeds := 500
	if testing.Short() {
		seeds = 60
	}
	for seed := 1; seed <= seeds; seed++ {
		pair := policygen.Generate(policygen.Params{
			Seed:        uint64(seed),
			Clauses:     2 + seed%7,
			Communities: seed % 4,
			Differences: seed % 3,
		})
		c1, err := cisco.Parse("c.cfg", pair.CiscoText)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		c2, err := juniper.Parse("j.cfg", pair.JuniperText)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		base, err := campion.Diff(c1, c2, campion.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want := render(t, base)
		for name, opts := range modes() {
			rep, err := campion.Diff(c1, c2, opts)
			if err != nil {
				t.Fatalf("seed %d mode %s: %v", seed, name, err)
			}
			if got := render(t, rep); !bytes.Equal(got, want) {
				t.Fatalf("seed %d mode %s diverges:\n%s\nvs\n%s", seed, name, got, want)
			}
		}
	}
}

// TestACLModeSweep: the same invisibility contract for the ACL engine.
func TestACLModeSweep(t *testing.T) {
	seeds := 500
	if testing.Short() {
		seeds = 60
	}
	for seed := 1; seed <= seeds; seed++ {
		pair := aclgen.Generate(aclgen.Params{
			Seed:        uint64(seed),
			Rules:       3 + seed%8,
			Pools:       2 + seed%3,
			Differences: seed % 3,
		})
		mk := func(host string, acl *ir.ACL) *ir.Config {
			return &ir.Config{Hostname: host, ACLs: map[string]*ir.ACL{"GEN": acl}}
		}
		c1, c2 := mk("r1", pair.Cisco), mk("r2", pair.Juniper)
		base, err := campion.Diff(c1, c2, campion.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want := render(t, base)
		for name, opts := range modes() {
			rep, err := campion.Diff(c1, c2, opts)
			if err != nil {
				t.Fatalf("seed %d mode %s: %v", seed, name, err)
			}
			if got := render(t, rep); !bytes.Equal(got, want) {
				t.Fatalf("seed %d mode %s diverges:\n%s\nvs\n%s", seed, name, got, want)
			}
		}
	}
}
