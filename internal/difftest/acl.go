package difftest

import (
	"repro/internal/bdd"
	"repro/internal/ir"
	"repro/internal/oracle"
	"repro/internal/semdiff"
	"repro/internal/symbolic"
)

// CheckACLs cross-checks the symbolic diff of one ACL pair against the
// concrete oracle. The packet encoding is an exact bit-blast (no
// atomization), so all properties are strict: every region witness must
// disagree concretely, and sampled packets must disagree exactly when
// they fall inside the reported union.
func CheckACLs(acl1, acl2 *ir.ACL, pair string, opts Options) *Report {
	opts = opts.withDefaults()
	rep := &Report{maxViolations: opts.MaxViolations, ACLPairs: 1}
	rng := opts.rng()

	enc := symbolic.NewPacketEncoding()
	diffs := semdiff.DiffACLs(enc, acl1, acl2)
	union := semdiff.UnionACLInputs(enc, diffs)

	// The union of regions must be exactly the symmetric difference of
	// the accept sets — the regions partition it, no more, no less.
	if xor := enc.F.Xor(enc.AcceptSet(acl1), enc.AcceptSet(acl2)); union != xor {
		rep.violate("completeness", pair, "union of regions differs from accept-set xor")
	}
	if rev := semdiff.UnionACLInputs(enc, semdiff.DiffACLs(enc, acl2, acl1)); rev != union {
		rep.violate("asymmetry", pair, "diff(A,B) inputs != diff(B,A) inputs")
	}

	coin := func() bool { return rng.Intn(2) == 1 }
	for _, d := range diffs {
		rep.Regions++
		a := enc.F.AnySat(d.Inputs)
		if a == nil {
			rep.violate("witness-unsound", pair, "region has empty input set")
			continue
		}
		checkACLWitness(rep, d, enc.PacketFromAssignment(a), acl1, acl2, pair)
		for i := 0; i < opts.WitnessDraws; i++ {
			ra := enc.F.RandSat(d.Inputs, coin)
			if ra == nil {
				break
			}
			checkACLWitness(rep, d, enc.PacketFromAssignment(ra), acl1, acl2, pair)
		}
	}

	sampler := newPacketSampler(rng, acl1, acl2)
	for i := 0; i < opts.Samples; i++ {
		p := sampler.sample()
		rep.SampleChecks++
		d1 := evalACLBothWays(rep, acl1, p, pair, "side 1")
		d2 := evalACLBothWays(rep, acl2, p, pair, "side 2")
		disagree := d1.Action != d2.Action
		if disagree {
			rep.Disagreements++
		}
		inUnion := enc.F.And(union, enc.PacketCube(p)) != bdd.False
		if disagree != inUnion {
			rep.violate("completeness", pair,
				"packet %+v: oracle disagreement=%v but in-union=%v\nside 1 trace:\n%s\nside 2 trace:\n%s",
				p, disagree, inUnion, indent(d1.String()), indent(d2.String()))
		}
	}
	return rep
}

// SelfCheckACL asserts diff(A,A) = ∅.
func SelfCheckACL(acl *ir.ACL, pair string, opts Options) *Report {
	opts = opts.withDefaults()
	rep := &Report{maxViolations: opts.MaxViolations}
	enc := symbolic.NewPacketEncoding()
	if diffs := semdiff.DiffACLs(enc, acl, acl); len(diffs) != 0 {
		rep.violate("self-diff", pair, "diff(A,A) reported %d regions", len(diffs))
	}
	return rep
}

// checkACLWitness verifies one packet drawn from one ACL diff region:
// each side's oracle decision must match the region's class prediction,
// and since ACL classes in a region always differ in accept bit, the
// two sides must disagree.
func checkACLWitness(rep *Report, d semdiff.ACLDiff, p ir.Packet, acl1, acl2 *ir.ACL, pair string) {
	rep.WitnessChecks++
	d1 := evalACLBothWays(rep, acl1, p, pair, "side 1")
	d2 := evalACLBothWays(rep, acl2, p, pair, "side 2")
	if d1.Permits() != d.Path1.Accept {
		rep.violate("path-mismatch", pair,
			"side 1: witness %+v in class predicted accept=%v, oracle decided %v\ntrace:\n%s",
			p, d.Path1.Accept, d1.Action, indent(d1.String()))
	}
	if d2.Permits() != d.Path2.Accept {
		rep.violate("path-mismatch", pair,
			"side 2: witness %+v in class predicted accept=%v, oracle decided %v\ntrace:\n%s",
			p, d.Path2.Accept, d2.Action, indent(d2.String()))
	}
	if d1.Action == d2.Action {
		rep.violate("witness-unsound", pair,
			"witness %+v drawn from a diff region but both sides decided %v", p, d1.Action)
	}
}

// evalACLBothWays evaluates the packet with both concrete
// implementations (oracle and ir.ACL.Evaluate), recording a violation on
// divergence.
func evalACLBothWays(rep *Report, acl *ir.ACL, p ir.Packet, pair, side string) oracle.ACLDecision {
	od := oracle.EvalACL(acl, p)
	act, _ := acl.Evaluate(p)
	if od.Action != act {
		rep.violate("oracle-vs-ir", pair, "%s: oracle says %v, ACL.Evaluate says %v on %+v\ntrace:\n%s",
			side, od.Action, act, p, indent(od.String()))
	}
	return od
}
