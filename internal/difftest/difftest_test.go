package difftest

import (
	"testing"

	"repro/internal/aclgen"
	"repro/internal/cisco"
	"repro/internal/ir"
	"repro/internal/juniper"
	"repro/internal/policygen"
)

// checkPolicyPair runs the full route-map harness on one generated
// cross-vendor pair and fails the test on any violation.
func checkPolicyPair(t *testing.T, params policygen.Params, opts Options) *Report {
	t.Helper()
	pair := policygen.Generate(params)
	c, err := cisco.Parse("c.cfg", pair.CiscoText)
	if err != nil {
		t.Fatalf("seed %d: cisco parse: %v", params.Seed, err)
	}
	j, err := juniper.Parse("j.cfg", pair.JuniperText)
	if err != nil {
		t.Fatalf("seed %d: juniper parse: %v", params.Seed, err)
	}
	rm1, rm2 := c.RouteMaps[pair.PolicyName], j.RouteMaps[pair.PolicyName]
	if rm1 == nil || rm2 == nil {
		t.Fatalf("seed %d: generated policy %s missing after parse", params.Seed, pair.PolicyName)
	}
	rep := CheckRouteMaps(c, rm1, j, rm2, pair.PolicyName, opts)
	for _, v := range rep.Violations {
		t.Errorf("seed %d: %s", params.Seed, v)
	}
	if rep.TotalViolations > len(rep.Violations) {
		t.Errorf("seed %d: %d further violations not retained", params.Seed,
			rep.TotalViolations-len(rep.Violations))
	}
	return rep
}

// checkACLPairSeed runs the ACL harness on one generated pair.
func checkACLPairSeed(t *testing.T, params aclgen.Params, opts Options) *Report {
	t.Helper()
	pair := aclgen.Generate(params)
	rep := CheckACLs(pair.Cisco, pair.Juniper, pair.Name, opts)
	for _, v := range rep.Violations {
		t.Errorf("seed %d: %s", params.Seed, v)
	}
	return rep
}

// TestRouteMapDifferentialSweep is the deterministic CI sweep over
// generated cross-vendor route-map pairs: 500 pairs, every reported
// region witness-checked against the oracle, plus completeness sampling.
// Zero oracle/symbolic disagreements are tolerated.
func TestRouteMapDifferentialSweep(t *testing.T) {
	total := &Report{}
	for seed := uint64(0); seed < 500; seed++ {
		rep := checkPolicyPair(t, policygen.Params{
			Seed:        seed,
			Clauses:     2 + int(seed%6),
			Communities: 2 + int(seed%4),
			Differences: int(seed % 4),
		}, Options{Samples: 16, WitnessDraws: 2, Seed: seed})
		total.Merge(rep)
		if t.Failed() {
			t.Fatalf("stopping after first failing seed (%d)", seed)
		}
	}
	if total.Regions == 0 || total.Disagreements == 0 {
		t.Fatalf("sweep exercised nothing: %s", total.Summary())
	}
	t.Logf("route-map sweep: %s", total.Summary())
}

// TestACLDifferentialSweep is the ACL analogue: 500 generated pairs,
// strict witness and sampling checks (the packet encoding is exact).
func TestACLDifferentialSweep(t *testing.T) {
	total := &Report{}
	for seed := uint64(0); seed < 500; seed++ {
		rep := checkACLPairSeed(t, aclgen.Params{
			Seed:        seed,
			Rules:       4 + int(seed%10),
			Pools:       2 + int(seed%6),
			Differences: int(seed % 4),
		}, Options{Samples: 16, WitnessDraws: 2, Seed: seed})
		total.Merge(rep)
		if t.Failed() {
			t.Fatalf("stopping after first failing seed (%d)", seed)
		}
	}
	if total.Regions == 0 || total.Disagreements == 0 {
		t.Fatalf("sweep exercised nothing: %s", total.Summary())
	}
	t.Logf("acl sweep: %s", total.Summary())
}

// TestSelfDiffIsEmpty: diff(A,A)=∅ for both vendors' parses of generated
// policies and for generated ACLs.
func TestSelfDiffIsEmpty(t *testing.T) {
	for seed := uint64(0); seed < 25; seed++ {
		pair := policygen.Generate(policygen.Params{Seed: seed, Clauses: 6, Differences: int(seed % 3)})
		c, err := cisco.Parse("c.cfg", pair.CiscoText)
		if err != nil {
			t.Fatal(err)
		}
		j, err := juniper.Parse("j.cfg", pair.JuniperText)
		if err != nil {
			t.Fatal(err)
		}
		for _, side := range []struct {
			cfg *ir.Config
			tag string
		}{{c, "cisco"}, {j, "juniper"}} {
			rep := SelfCheckRouteMap(side.cfg, side.cfg.RouteMaps[pair.PolicyName], side.tag, Options{})
			for _, v := range rep.Violations {
				t.Errorf("seed %d: %s", seed, v)
			}
		}
		aclPair := aclgen.Generate(aclgen.Params{Seed: seed, Rules: 10, Differences: int(seed % 3)})
		for _, acl := range []*ir.ACL{aclPair.Cisco, aclPair.Juniper} {
			rep := SelfCheckACL(acl, acl.Name, Options{})
			for _, v := range rep.Violations {
				t.Errorf("seed %d: %s", seed, v)
			}
		}
	}
}

// TestCheckConfigsEndToEnd runs the whole-config harness over a
// generated cross-vendor pair, exercising policy pairing, chain
// resolution, self-checks, and ACL pairing in one call.
func TestCheckConfigsEndToEnd(t *testing.T) {
	pair := policygen.Generate(policygen.Params{Seed: 7, Clauses: 6, Differences: 2})
	c, err := cisco.Parse("c.cfg", pair.CiscoText)
	if err != nil {
		t.Fatal(err)
	}
	j, err := juniper.Parse("j.cfg", pair.JuniperText)
	if err != nil {
		t.Fatal(err)
	}
	rep := CheckConfigs(c, j, Options{Samples: 32, Seed: 7})
	for _, v := range rep.Violations {
		t.Error(v)
	}
	if rep.RouteMapPairs == 0 {
		t.Fatalf("CheckConfigs paired no policies: %s", rep.Summary())
	}
	if rep.Regions == 0 {
		t.Errorf("expected diff regions for an injected-difference pair: %s", rep.Summary())
	}
}

// FuzzRouteMapDifferential drives the route-map harness from raw fuzz
// input via policygen.ParamsFromBytes. Any violation — an oracle/symbolic
// disagreement, a vacuous region, an asymmetric diff — crashes the fuzz
// target.
func FuzzRouteMapDifferential(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 1, 4, 2, 1})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 42, 9, 5, 3})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 6, 3, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		params := policygen.ParamsFromBytes(data)
		pair := policygen.Generate(params)
		c, err := cisco.Parse("c.cfg", pair.CiscoText)
		if err != nil {
			t.Skip() // generator emitted something the parser rejects: not this harness's bug
		}
		j, err := juniper.Parse("j.cfg", pair.JuniperText)
		if err != nil {
			t.Skip()
		}
		rm1, rm2 := c.RouteMaps[pair.PolicyName], j.RouteMaps[pair.PolicyName]
		if rm1 == nil || rm2 == nil {
			t.Skip()
		}
		rep := CheckRouteMaps(c, rm1, j, rm2, pair.PolicyName,
			Options{Samples: 12, WitnessDraws: 2, Seed: params.Seed})
		for _, v := range rep.Violations {
			t.Errorf("params %+v: %s", params, v)
		}
	})
}

// FuzzACLDifferential is the ACL analogue over aclgen.ParamsFromBytes.
func FuzzACLDifferential(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 1, 8, 3, 1})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 99, 15, 6, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		params := aclgen.ParamsFromBytes(data)
		pair := aclgen.Generate(params)
		rep := CheckACLs(pair.Cisco, pair.Juniper, pair.Name,
			Options{Samples: 12, WitnessDraws: 2, Seed: params.Seed})
		for _, v := range rep.Violations {
			t.Errorf("params %+v: %s", params, v)
		}
	})
}
