// Package difftest is the differential oracle harness: it cross-checks
// the symbolic diff engine (internal/semdiff over internal/symbolic)
// against the concrete reference interpreter (internal/oracle) on real
// inputs, three ways:
//
//  1. Witness soundness — every diff region the symbolic engine reports
//     must contain concrete routes/packets on which the two
//     configurations verifiably behave as the region's two equivalence
//     classes predict, and (for behaviorally-separable regions) on which
//     they concretely disagree.
//  2. Completeness sampling — every sampled concrete input on which the
//     oracle says the configurations disagree must fall inside the union
//     of reported regions; conversely an in-union sample must disagree
//     concretely, up to transform-coincidence points (see below).
//  3. Metamorphic properties — diff(A,A) is empty, diff(A,B) mirrors
//     diff(B,A), and semantics-preserving rewrites (disjoint-clause
//     reordering, prefix-list renaming, ACL line duplication) leave the
//     diff unchanged.
//
// One caveat keeps check 2 from being a strict iff: SemanticDiff
// compares attribute transformations intensionally (canonical Transform
// equality), so a region where both sides permit but transform
// differently can contain isolated points where the two outputs
// coincide — e.g. "set med 5" versus no-op on a route that already
// carries MED 5. Such points are counted (Report.Coincidences), verified
// to really be coincidence points, and not treated as violations.
package difftest

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/ir"
)

// Options tunes a harness run. The zero value gets sane defaults.
type Options struct {
	// Samples is the number of concrete inputs drawn per pair (default 64).
	Samples int
	// WitnessDraws is the number of witnesses drawn per diff region in
	// addition to the deterministic first witness (default 4).
	WitnessDraws int
	// Seed fixes the sampling PRNG; the same seed replays the same run.
	Seed uint64
	// MaxViolations bounds the retained violation details (default 20);
	// further violations are still counted.
	MaxViolations int
}

func (o Options) withDefaults() Options {
	if o.Samples <= 0 {
		o.Samples = 64
	}
	if o.WitnessDraws <= 0 {
		o.WitnessDraws = 4
	}
	if o.MaxViolations <= 0 {
		o.MaxViolations = 20
	}
	return o
}

func (o Options) rng() *rand.Rand {
	return rand.New(rand.NewSource(int64(o.Seed) ^ 0x5eed))
}

// Violation is one observed inconsistency between the symbolic engine
// and the concrete oracle.
type Violation struct {
	// Kind classifies the failed property: "witness-unsound",
	// "path-mismatch", "completeness", "sample-unsound", "oracle-vs-ir",
	// "self-diff", "asymmetry", "metamorphic", "error".
	Kind string
	// Pair names the policy or ACL pair being checked.
	Pair string
	// Detail is a human-readable account, including the oracle's
	// decision traces where applicable.
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("[%s] %s: %s", v.Kind, v.Pair, v.Detail)
}

// Report accumulates the outcome of one or more pair checks.
type Report struct {
	RouteMapPairs int
	ACLPairs      int
	// Regions is the total diff regions examined for witnesses.
	Regions int
	// WitnessChecks counts individual witness evaluations.
	WitnessChecks int
	// InexactWitnesses counts regions whose only witnesses require an
	// as-path outside the configurations' regex vocabulary; their checks
	// are advisory (see symbolic.WitnessRoute).
	InexactWitnesses int
	// SampleChecks counts sampled concrete inputs.
	SampleChecks int
	// Disagreements counts samples on which the oracle saw the two
	// configurations disagree.
	Disagreements int
	// Coincidences counts in-region samples where intensionally-different
	// transforms produced identical outputs (documented non-violations).
	Coincidences int
	// TotalViolations counts all violations, retained or not.
	TotalViolations int
	Violations      []Violation

	maxViolations int
}

// OK reports whether the run saw no violations.
func (r *Report) OK() bool { return r.TotalViolations == 0 }

func (r *Report) violate(kind, pair, format string, args ...interface{}) {
	r.TotalViolations++
	if r.maxViolations > 0 && len(r.Violations) >= r.maxViolations {
		return
	}
	r.Violations = append(r.Violations, Violation{Kind: kind, Pair: pair, Detail: fmt.Sprintf(format, args...)})
}

// Merge folds another report into r.
func (r *Report) Merge(o *Report) {
	r.RouteMapPairs += o.RouteMapPairs
	r.ACLPairs += o.ACLPairs
	r.Regions += o.Regions
	r.WitnessChecks += o.WitnessChecks
	r.InexactWitnesses += o.InexactWitnesses
	r.SampleChecks += o.SampleChecks
	r.Disagreements += o.Disagreements
	r.Coincidences += o.Coincidences
	r.TotalViolations += o.TotalViolations
	for _, v := range o.Violations {
		if r.maxViolations > 0 && len(r.Violations) >= r.maxViolations {
			break
		}
		r.Violations = append(r.Violations, v)
	}
}

// Summary renders the counters on one line.
func (r *Report) Summary() string {
	status := "CONSISTENT"
	if !r.OK() {
		status = fmt.Sprintf("INCONSISTENT (%d violations)", r.TotalViolations)
	}
	return fmt.Sprintf("%s: %d route-map pairs, %d acl pairs, %d regions, %d witness checks (%d inexact), %d samples (%d disagreements, %d coincidences)",
		status, r.RouteMapPairs, r.ACLPairs, r.Regions, r.WitnessChecks,
		r.InexactWitnesses, r.SampleChecks, r.Disagreements, r.Coincidences)
}

// CheckConfigs runs the full harness over two parsed configurations: it
// pairs up routing policies exactly like the diff engine does
// (core.MatchPolicies with the same-name fallback), pairs ACLs by name,
// and checks every pair for witness soundness and sampling consistency —
// including the diff(A,A)=∅ self-check on each side.
func CheckConfigs(cfg1, cfg2 *ir.Config, opts Options) *Report {
	opts = opts.withDefaults()
	rep := &Report{maxViolations: opts.MaxViolations}

	type rmPair struct {
		name     string
		rm1, rm2 *ir.RouteMap
	}
	var rmPairs []rmPair
	for _, pp := range core.MatchPolicies(cfg1, cfg2) {
		rmPairs = append(rmPairs, rmPair{
			name: pp.Kind + " " + pp.Neighbor,
			rm1:  core.ResolveChain(cfg1, pp.Names1),
			rm2:  core.ResolveChain(cfg2, pp.Names2),
		})
	}
	if len(rmPairs) == 0 {
		var names []string
		for n := range cfg1.RouteMaps {
			if _, ok := cfg2.RouteMaps[n]; ok {
				names = append(names, n)
			}
		}
		sort.Strings(names)
		for _, n := range names {
			rmPairs = append(rmPairs, rmPair{name: "route-map " + n,
				rm1: cfg1.RouteMaps[n], rm2: cfg2.RouteMaps[n]})
		}
	}
	for i, p := range rmPairs {
		sub := opts
		sub.Seed = opts.Seed + uint64(i)*0x9e37
		rep.Merge(CheckRouteMaps(cfg1, p.rm1, cfg2, p.rm2, p.name, sub))
		rep.Merge(SelfCheckRouteMap(cfg1, p.rm1, p.name+" (side 1 self)", sub))
		rep.Merge(SelfCheckRouteMap(cfg2, p.rm2, p.name+" (side 2 self)", sub))
	}

	var aclNames []string
	for n := range cfg1.ACLs {
		if _, ok := cfg2.ACLs[n]; ok {
			aclNames = append(aclNames, n)
		}
	}
	sort.Strings(aclNames)
	for i, n := range aclNames {
		sub := opts
		sub.Seed = opts.Seed + 0xac1 + uint64(i)*0x9e37
		rep.Merge(CheckACLs(cfg1.ACLs[n], cfg2.ACLs[n], "acl "+n, sub))
		rep.Merge(SelfCheckACL(cfg1.ACLs[n], "acl "+n+" (side 1 self)", sub))
		rep.Merge(SelfCheckACL(cfg2.ACLs[n], "acl "+n+" (side 2 self)", sub))
	}
	return rep
}

func indent(s string) string {
	return "    " + strings.ReplaceAll(s, "\n", "\n    ")
}
