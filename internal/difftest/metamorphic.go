package difftest

import (
	"repro/internal/bdd"
	"repro/internal/ir"
	"repro/internal/symbolic"
)

// Semantics-preserving configuration rewrites. Each returns a rewritten
// copy that must diff empty against the original — the metamorphic leg
// of the harness. The originals are never mutated.

// ReorderDisjointClauses returns a copy of rm with the first adjacent
// clause pair whose match guards are symbolically disjoint swapped, or
// (nil, false) when no adjacent pair is disjoint. Disjointness is
// decided on a fresh encoding over cfg; since no route matches both
// clauses, the swap cannot change which clause decides any route.
func ReorderDisjointClauses(cfg *ir.Config, rm *ir.RouteMap) (*ir.RouteMap, bool) {
	enc := symbolic.NewRouteEncoding(cfg)
	for i := 0; i+1 < len(rm.Clauses); i++ {
		g1 := enc.ClauseGuardBDD(cfg, rm.Clauses[i])
		g2 := enc.ClauseGuardBDD(cfg, rm.Clauses[i+1])
		if enc.F.And(g1, g2) != bdd.False {
			continue
		}
		out := &ir.RouteMap{Name: rm.Name, DefaultAction: rm.DefaultAction, Span: rm.Span}
		out.Clauses = append([]*ir.RouteMapClause{}, rm.Clauses...)
		out.Clauses[i], out.Clauses[i+1] = out.Clauses[i+1], out.Clauses[i]
		return out, true
	}
	return nil, false
}

// RenamePrefixLists returns a copy of cfg with every prefix list renamed
// to name+suffix and all route-map references (match prefix-list,
// prefix-list-filter, next-hop) rewritten to follow. Pure renaming must
// be invisible to the semantic differ.
func RenamePrefixLists(cfg *ir.Config, suffix string) *ir.Config {
	out := *cfg
	out.PrefixLists = make(map[string]*ir.PrefixList, len(cfg.PrefixLists))
	for name, pl := range cfg.PrefixLists {
		cp := *pl
		cp.Name = name + suffix
		out.PrefixLists[name+suffix] = &cp
	}
	rename := func(names []string) []string {
		renamed := make([]string, len(names))
		for i, n := range names {
			if _, ok := cfg.PrefixLists[n]; ok {
				renamed[i] = n + suffix
			} else {
				renamed[i] = n // dangling reference stays dangling
			}
		}
		return renamed
	}
	out.RouteMaps = make(map[string]*ir.RouteMap, len(cfg.RouteMaps))
	for name, rm := range cfg.RouteMaps {
		rmCopy := *rm
		rmCopy.Clauses = make([]*ir.RouteMapClause, len(rm.Clauses))
		for ci, cl := range rm.Clauses {
			clCopy := *cl
			clCopy.Matches = make([]ir.Match, len(cl.Matches))
			for mi, m := range cl.Matches {
				switch m := m.(type) {
				case ir.MatchPrefixList:
					clCopy.Matches[mi] = ir.MatchPrefixList{Lists: rename(m.Lists)}
				case ir.MatchPrefixListFilter:
					clCopy.Matches[mi] = ir.MatchPrefixListFilter{List: rename([]string{m.List})[0], Modifier: m.Modifier}
				case ir.MatchNextHop:
					clCopy.Matches[mi] = ir.MatchNextHop{Lists: rename(m.Lists)}
				default:
					clCopy.Matches[mi] = m
				}
			}
			rmCopy.Clauses[ci] = &clCopy
		}
		out.RouteMaps[name] = &rmCopy
	}
	return &out
}

// DuplicateACLLine returns a copy of acl with line i duplicated in
// place. Under first-match-wins the shadowed copy can never fire, so the
// rewrite preserves semantics.
func DuplicateACLLine(acl *ir.ACL, i int) *ir.ACL {
	out := &ir.ACL{Name: acl.Name, Span: acl.Span}
	for j, l := range acl.Lines {
		out.Lines = append(out.Lines, l)
		if j == i {
			cp := *l
			out.Lines = append(out.Lines, &cp)
		}
	}
	return out
}
