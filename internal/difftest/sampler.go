package difftest

import (
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/bdd"
	"repro/internal/headerloc"
	"repro/internal/ir"
	"repro/internal/netaddr"
	"repro/internal/semdiff"
	"repro/internal/symbolic"
)

// routeSampler draws concrete routes biased toward the decision
// boundaries of the configurations under test: prefixes just inside and
// outside every configured range, the community/MED/tag/as-path
// vocabulary of the encoding, plus uniform noise. Every sampled route is
// symbolically faithful — its attributes stay inside the encoding's atom
// universes (or deliberately outside all atoms), so RouteCube(r) denotes
// exactly the route and the concrete and symbolic semantics coincide.
type routeSampler struct {
	rng      *rand.Rand
	prefixes []netaddr.Prefix
	comms    []string
	meds     []int64
	tags     []int64
	asPaths  [][]int64
	nextHops []netaddr.Addr
}

func newRouteSampler(enc *symbolic.RouteEncoding, rng *rand.Rand, cfgs ...*ir.Config) *routeSampler {
	s := &routeSampler{rng: rng}
	for _, cfg := range cfgs {
		for _, r := range headerloc.ConfigPrefixRanges(cfg) {
			s.prefixes = append(s.prefixes,
				netaddr.NewPrefix(r.Prefix.Addr, r.Lo),
				netaddr.NewPrefix(r.Prefix.Addr, r.Hi))
			if r.Hi < 32 {
				s.prefixes = append(s.prefixes, netaddr.NewPrefix(r.Prefix.Addr, r.Hi+1))
			}
			if r.Lo > 0 {
				s.prefixes = append(s.prefixes, netaddr.NewPrefix(r.Prefix.Addr, r.Lo-1))
			}
			// A sibling just outside the range's address bits.
			if r.Prefix.Len > 0 && r.Prefix.Len <= 32 {
				flip := netaddr.Addr(uint32(r.Prefix.Addr) ^ (1 << (32 - uint(r.Prefix.Len))))
				s.prefixes = append(s.prefixes, netaddr.NewPrefix(flip, r.Hi))
			}
		}
		for _, pl := range cfg.PrefixLists {
			for _, e := range pl.Entries {
				s.nextHops = append(s.nextHops, e.Range.Prefix.Addr)
			}
		}
	}
	s.comms = enc.Comms.Atoms()
	s.meds = append(append([]int64{}, enc.MEDValues()...), 0, enc.FreshMED())
	s.tags = append(append([]int64{}, enc.TagValues()...), 0, enc.FreshTag())
	// Concrete as-paths are drawn from the encoding's atom universe only:
	// a path outside it would hit the "<other>" under-approximation and
	// the concrete regex semantics could diverge from the symbolic one.
	for _, atom := range enc.ASPathAtoms() {
		s.asPaths = append(s.asPaths, parseASNs(atom))
	}
	s.asPaths = append(s.asPaths, nil)
	return s
}

func parseASNs(s string) []int64 {
	var out []int64
	for _, f := range strings.Fields(s) {
		n, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return nil
		}
		out = append(out, n)
	}
	return out
}

var sampleProtocols = []ir.Protocol{
	ir.ProtoConnected, ir.ProtoStatic, ir.ProtoOSPF, ir.ProtoBGP,
	ir.ProtoIBGP, ir.ProtoAggregate, ir.ProtoLocal,
}

func (s *routeSampler) sample() *ir.Route {
	var p netaddr.Prefix
	if len(s.prefixes) > 0 && s.rng.Intn(4) != 0 {
		p = s.prefixes[s.rng.Intn(len(s.prefixes))]
	} else {
		p = netaddr.NewPrefix(netaddr.Addr(s.rng.Uint32()), uint8(s.rng.Intn(33)))
	}
	r := ir.NewRoute(p)
	for _, c := range s.comms {
		if s.rng.Intn(4) == 0 {
			r.Communities[c] = true
		}
	}
	if len(s.meds) > 0 {
		r.MED = s.meds[s.rng.Intn(len(s.meds))]
	}
	if len(s.tags) > 0 {
		r.Tag = s.tags[s.rng.Intn(len(s.tags))]
	}
	if len(s.asPaths) > 0 {
		r.ASPath = append([]int64(nil), s.asPaths[s.rng.Intn(len(s.asPaths))]...)
	}
	if len(s.nextHops) > 0 && s.rng.Intn(2) == 0 {
		r.NextHop = s.nextHops[s.rng.Intn(len(s.nextHops))]
	} else {
		r.NextHop = netaddr.Addr(s.rng.Uint32())
	}
	if s.rng.Intn(4) == 0 {
		r.Protocol = sampleProtocols[s.rng.Intn(len(sampleProtocols))]
	}
	return r
}

// sampleRouteMaps is the completeness/exactness sampling pass of
// CheckRouteMaps: for each sampled route, a concrete disagreement must
// fall inside the reported union, and an in-union sample must disagree
// concretely — unless it is a verified transform-coincidence point.
func sampleRouteMaps(rep *Report, rng *rand.Rand, enc *symbolic.RouteEncoding,
	cfg1 *ir.Config, rm1 *ir.RouteMap, cfg2 *ir.Config, rm2 *ir.RouteMap,
	diffs []semdiff.RouteMapDiff, union bdd.Node, pair string, opts Options) {
	sampler := newRouteSampler(enc, rng, cfg1, cfg2)
	for i := 0; i < opts.Samples; i++ {
		r := sampler.sample()
		rep.SampleChecks++
		d1 := evalBothWays(rep, cfg1, rm1, r, pair, "side 1")
		d2 := evalBothWays(rep, cfg2, rm2, r, pair, "side 2")
		disagree := routeDisagree(d1, d2)
		if disagree {
			rep.Disagreements++
		}
		inUnion := enc.F.And(union, enc.RouteCube(r)) != bdd.False
		switch {
		case disagree && !inUnion:
			rep.violate("completeness", pair,
				"oracle disagrees on %v (side1 %v, side2 %v) but the route is outside every reported region\nside 1 trace:\n%s\nside 2 trace:\n%s",
				r, d1.Action, d2.Action, indent(d1.String()), indent(d2.String()))
		case !disagree && inUnion:
			if coincidencePoint(enc, diffs, r) {
				rep.Coincidences++
			} else {
				rep.violate("sample-unsound", pair,
					"route %v falls in a reported region but the oracle sees no disagreement (both %v)",
					r, d1.Action)
			}
		}
	}
}

// coincidencePoint reports whether route r lies in a region whose two
// classes both accept with intensionally-different transforms that
// happen to produce identical outputs on r — the one legitimate way an
// in-union input can fail to disagree concretely. Each side's classes
// partition the input space, so r lies in at most one region.
func coincidencePoint(enc *symbolic.RouteEncoding, diffs []semdiff.RouteMapDiff, r *ir.Route) bool {
	cube := enc.RouteCube(r)
	for _, d := range diffs {
		if enc.F.And(d.Inputs, cube) == bdd.False {
			continue
		}
		if d.Path1.Accept != d.Path2.Accept {
			return false
		}
		return predictedOutput(d.Path1.Transform, r).Equal(predictedOutput(d.Path2.Transform, r))
	}
	return false
}

// packetSampler draws concrete packets biased toward the address, port,
// and protocol constants of the ACL pair under test. The packet
// encoding is an exact bit-blast, so any packet is symbolically
// faithful; the bias just concentrates probes near decision boundaries.
type packetSampler struct {
	rng    *rand.Rand
	addrs  []netaddr.Addr
	ports  []uint16
	protos []uint8
	icmp   []uint8
}

func newPacketSampler(rng *rand.Rand, acls ...*ir.ACL) *packetSampler {
	s := &packetSampler{rng: rng, protos: []uint8{ir.ProtoNumTCP, ir.ProtoNumUDP, ir.ProtoNumICMP}}
	seenProto := map[uint8]bool{}
	for _, acl := range acls {
		if acl == nil {
			continue
		}
		for _, l := range acl.Lines {
			for _, w := range append(append([]netaddr.Wildcard{}, l.Src...), l.Dst...) {
				s.addrs = append(s.addrs, w.Addr,
					netaddr.Addr(uint32(w.Addr)|uint32(w.Mask)),  // last covered address
					netaddr.Addr(uint32(w.Addr)^^uint32(w.Mask))) // all cared bits flipped: outside
			}
			for _, pr := range append(append([]netaddr.PortRange{}, l.SrcPorts...), l.DstPorts...) {
				s.ports = append(s.ports, pr.Lo, pr.Hi, pr.Lo-1, pr.Hi+1)
			}
			if !l.Protocol.Any && !seenProto[l.Protocol.Number] {
				seenProto[l.Protocol.Number] = true
				s.protos = append(s.protos, l.Protocol.Number)
			}
			if l.ICMPType >= 0 {
				s.icmp = append(s.icmp, uint8(l.ICMPType), uint8(l.ICMPType)+1)
			}
		}
	}
	return s
}

func (s *packetSampler) addr() netaddr.Addr {
	if len(s.addrs) > 0 && s.rng.Intn(3) != 0 {
		return s.addrs[s.rng.Intn(len(s.addrs))]
	}
	return netaddr.Addr(s.rng.Uint32())
}

func (s *packetSampler) port() uint16 {
	if len(s.ports) > 0 && s.rng.Intn(3) != 0 {
		return s.ports[s.rng.Intn(len(s.ports))]
	}
	return uint16(s.rng.Intn(65536))
}

func (s *packetSampler) sample() ir.Packet {
	p := ir.Packet{
		Src:     s.addr(),
		Dst:     s.addr(),
		SrcPort: s.port(),
		DstPort: s.port(),
		TCPAck:  s.rng.Intn(2) == 0,
		TCPRst:  s.rng.Intn(4) == 0,
	}
	if s.rng.Intn(8) == 0 {
		p.Protocol = uint8(s.rng.Intn(256))
	} else {
		p.Protocol = s.protos[s.rng.Intn(len(s.protos))]
	}
	if len(s.icmp) > 0 && s.rng.Intn(2) == 0 {
		p.ICMPType = s.icmp[s.rng.Intn(len(s.icmp))]
	} else {
		p.ICMPType = uint8(s.rng.Intn(256))
	}
	return p
}
