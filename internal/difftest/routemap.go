package difftest

import (
	"math/rand"

	"repro/internal/ir"
	"repro/internal/oracle"
	"repro/internal/semdiff"
	"repro/internal/symbolic"
)

// CheckRouteMaps cross-checks the symbolic diff of one route-map pair
// against the concrete oracle: witness soundness for every reported
// region, completeness and exactness on sampled routes, symmetry of the
// diff, and three-way implementation agreement (oracle vs ir.EvalRouteMap
// vs the symbolic path classes) on every input examined.
func CheckRouteMaps(cfg1 *ir.Config, rm1 *ir.RouteMap, cfg2 *ir.Config, rm2 *ir.RouteMap, pair string, opts Options) *Report {
	opts = opts.withDefaults()
	rep := &Report{maxViolations: opts.MaxViolations, RouteMapPairs: 1}
	rng := opts.rng()

	enc := symbolic.NewRouteEncoding(cfg1, cfg2)
	paths1, err := enc.EnumeratePaths(cfg1, rm1)
	if err != nil {
		rep.violate("error", pair, "enumerate side 1: %v", err)
		return rep
	}
	paths2, err := enc.EnumeratePaths(cfg2, rm2)
	if err != nil {
		rep.violate("error", pair, "enumerate side 2: %v", err)
		return rep
	}
	diffs := semdiff.DiffRouteMapPaths(enc, paths1, paths2)
	union := semdiff.UnionRouteMapInputs(enc, diffs)

	// Metamorphic symmetry: swapping the argument order must report the
	// same differing input set (BDD nodes are canonical, so semantic
	// equality is pointer equality).
	if rev := semdiff.UnionRouteMapInputs(enc, semdiff.DiffRouteMapPaths(enc, paths2, paths1)); rev != union {
		rep.violate("asymmetry", pair, "diff(A,B) inputs != diff(B,A) inputs")
	}

	checkRegionWitnesses(rep, rng, enc, cfg1, rm1, cfg2, rm2, diffs, pair, opts)
	sampleRouteMaps(rep, rng, enc, cfg1, rm1, cfg2, rm2, diffs, union, pair, opts)
	return rep
}

// SelfCheckRouteMap asserts diff(A,A) = ∅ — the most basic metamorphic
// property of a sound differ.
func SelfCheckRouteMap(cfg *ir.Config, rm *ir.RouteMap, pair string, opts Options) *Report {
	opts = opts.withDefaults()
	rep := &Report{maxViolations: opts.MaxViolations}
	enc := symbolic.NewRouteEncoding(cfg)
	diffs, err := semdiff.DiffRouteMaps(enc, cfg, rm, cfg, rm)
	if err != nil {
		rep.violate("error", pair, "self diff: %v", err)
		return rep
	}
	if len(diffs) != 0 {
		rep.violate("self-diff", pair, "diff(A,A) reported %d regions", len(diffs))
	}
	return rep
}

// routeDisagree reports whether two oracle decisions constitute a
// concrete behavioral disagreement; the definition lives on
// oracle.RouteDecision so the repair verifier applies the identical
// predicate.
func routeDisagree(d1, d2 oracle.RouteDecision) bool {
	return d1.Disagrees(d2)
}

// evalBothWays evaluates the route on one side with both concrete
// implementations, recording a violation if they ever disagree — the
// oracle is an independent rewrite of ir's evaluator, so any divergence
// is a bug in one of them.
func evalBothWays(rep *Report, cfg *ir.Config, rm *ir.RouteMap, r *ir.Route, pair, side string) oracle.RouteDecision {
	od := oracle.EvalRouteMap(cfg, rm, r)
	id := cfg.EvalRouteMap(rm, r)
	if od.Action != id.Action || (od.Action == ir.Permit && !od.Route.Equal(id.Route)) {
		rep.violate("oracle-vs-ir", pair, "%s: oracle says %v, ir.EvalRouteMap says %v on %v\noracle trace:\n%s",
			side, od.Action, id.Action, r, indent(od.String()))
	}
	return od
}

// predictedOutput applies a path's canonical transform to the input —
// the output the symbolic engine claims for any route in the path's
// guard.
func predictedOutput(t symbolic.Transform, r *ir.Route) *ir.Route {
	out := r.Clone()
	t.Apply(out)
	return out
}

// checkWitness verifies one concrete route drawn from one diff region:
// each side's oracle decision must be exactly what the region's
// equivalence class predicts (accept bit and transformed output).
// Returns whether the two sides concretely disagree on the witness.
func checkWitness(rep *Report, enc *symbolic.RouteEncoding,
	cfg1 *ir.Config, rm1 *ir.RouteMap, cfg2 *ir.Config, rm2 *ir.RouteMap,
	d semdiff.RouteMapDiff, w *ir.Route, pair string) bool {
	rep.WitnessChecks++
	d1 := evalBothWays(rep, cfg1, rm1, w, pair, "side 1")
	d2 := evalBothWays(rep, cfg2, rm2, w, pair, "side 2")
	checkPathPrediction(rep, d.Path1, d1, w, pair, "side 1")
	checkPathPrediction(rep, d.Path2, d2, w, pair, "side 2")
	return routeDisagree(d1, d2)
}

func checkPathPrediction(rep *Report, p symbolic.RoutePath, got oracle.RouteDecision, w *ir.Route, pair, side string) {
	if got.Permits() != p.Accept {
		rep.violate("path-mismatch", pair,
			"%s: witness %v in class predicted accept=%v, oracle decided %v\noracle trace:\n%s",
			side, w, p.Accept, got.Action, indent(got.String()))
		return
	}
	if !p.Accept {
		return
	}
	want := predictedOutput(p.Transform, w)
	if !got.Route.Equal(want) {
		rep.violate("path-mismatch", pair,
			"%s: witness %v transformed to %v, symbolic class predicted %v\noracle trace:\n%s",
			side, w, got.Route, want, indent(got.String()))
	}
}

// checkRegionWitnesses draws witnesses from every diff region. Regions
// whose classes differ behaviorally (accept bits differ, or the
// transforms separate on some drawn witness) must produce at least one
// concrete disagreement; a both-accept region whose transforms coincide
// on every drawn witness is only a violation if the class predictions
// themselves fail (checked per witness above) — the engine reports
// intensional transform differences by design.
func checkRegionWitnesses(rep *Report, rng *rand.Rand, enc *symbolic.RouteEncoding,
	cfg1 *ir.Config, rm1 *ir.RouteMap, cfg2 *ir.Config, rm2 *ir.RouteMap,
	diffs []semdiff.RouteMapDiff, pair string, opts Options) {
	coin := func() bool { return rng.Intn(2) == 1 }
	for _, d := range diffs {
		rep.Regions++
		w, exact := enc.WitnessRoute(d.Inputs)
		if w == nil {
			rep.violate("witness-unsound", pair, "region has empty input set")
			continue
		}
		if !exact {
			// Every witness needs an out-of-vocabulary as-path; its
			// synthesized concretization is advisory (the symbolic
			// "<other>" atom under-approximates regex matching).
			rep.InexactWitnesses++
			continue
		}
		disagreed := checkWitness(rep, enc, cfg1, rm1, cfg2, rm2, d, w, pair)
		separable := d.Path1.Accept != d.Path2.Accept
		for i := 0; i < opts.WitnessDraws; i++ {
			a := enc.F.RandSat(d.Inputs, coin)
			if a == nil {
				break
			}
			r, ok := enc.ExactRoute(a)
			if !ok {
				// This draw landed on the "<other>" as-path atom; its
				// synthesized concretization is not a faithful witness.
				continue
			}
			disagreed = checkWitness(rep, enc, cfg1, rm1, cfg2, rm2, d, r, pair) || disagreed
		}
		if !disagreed && separable {
			rep.violate("witness-unsound", pair,
				"region (accept %v vs %v) produced no concretely-disagreeing witness; first witness %v",
				d.Path1.Accept, d.Path2.Accept, w)
		}
	}
}
