package anonymize

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/campiontest"
	"repro/internal/core"
	"repro/internal/netaddr"
)

func TestAddrDeterministicAndBijectiveish(t *testing.T) {
	a := New(42)
	x := netaddr.MustParseAddr("10.9.1.7")
	if a.Addr(x) != a.Addr(x) {
		t.Error("mapping must be deterministic")
	}
	if New(42).Addr(x) != a.Addr(x) {
		t.Error("same key, same mapping")
	}
	if New(43).Addr(x) == a.Addr(x) {
		t.Log("different keys usually differ (not guaranteed, just informative)")
	}
	// Injectivity on a sample set.
	seen := map[netaddr.Addr]netaddr.Addr{}
	for i := uint32(0); i < 4096; i++ {
		in := netaddr.Addr(i * 1048583)
		out := a.Addr(in)
		if prev, dup := seen[out]; dup {
			t.Fatalf("collision: %v and %v both map to %v", prev, in, out)
		}
		seen[out] = in
	}
}

// TestPrefixPreservation is the defining property: common prefix lengths
// are exactly preserved.
func TestPrefixPreservation(t *testing.T) {
	a := New(7)
	common := func(x, y netaddr.Addr) int {
		for i := 0; i < 32; i++ {
			if x.Bit(i) != y.Bit(i) {
				return i
			}
		}
		return 32
	}
	f := func(x, y uint32) bool {
		ax, ay := netaddr.Addr(x), netaddr.Addr(y)
		return common(ax, ay) == common(a.Addr(ax), a.Addr(ay))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestKeepVerbatim(t *testing.T) {
	keep := []string{"255.255.255.0", "255.255.255.255", "0.0.0.0", "0.0.1.255", "0.255.255.255"}
	for _, s := range keep {
		if !keepVerbatim(netaddr.MustParseAddr(s)) {
			t.Errorf("%s should be kept verbatim", s)
		}
	}
	change := []string{"10.0.0.1", "192.0.2.7", "9.140.0.3"}
	for _, s := range change {
		if keepVerbatim(netaddr.MustParseAddr(s)) {
			t.Errorf("%s should be anonymized", s)
		}
	}
}

func TestTextRewriting(t *testing.T) {
	a := New(99)
	in := `hostname core-cisco
ip route 10.1.1.2 255.255.255.254 10.2.2.2
ip prefix-list NETS permit 10.9.0.0/16 le 32
access-list 101 deny ip 9.140.0.0 0.0.1.255 any
`
	out := a.Text(in)
	if strings.Contains(out, "core-cisco") {
		t.Error("hostname should be renamed")
	}
	if !strings.Contains(out, "255.255.255.254") || !strings.Contains(out, "0.0.1.255") {
		t.Error("masks and wildcards must stay verbatim")
	}
	if strings.Contains(out, "10.1.1.2 ") || strings.Contains(out, "10.9.0.0/16") {
		t.Errorf("addresses should change:\n%s", out)
	}
	if !strings.Contains(out, "/16 le 32") {
		t.Error("prefix lengths must stay")
	}
	if !strings.Contains(out, "access-list 101 deny ip ") {
		t.Error("non-address tokens unchanged")
	}
	// Deterministic.
	if a.Text(in) != out {
		t.Error("Text must be deterministic")
	}
}

// TestDiffStructurePreserved is the headline invariant: anonymizing both
// configurations under the same key preserves Campion's difference
// counts per component.
func TestDiffStructurePreserved(t *testing.T) {
	c1Text, c2Text := campiontest.Figure1Cisco, campiontest.Figure1Juniper
	a := New(1234)
	origC, err := campiontest.ParseCisco(c1Text)
	if err != nil {
		t.Fatal(err)
	}
	origJ, err := campiontest.ParseJuniper(c2Text)
	if err != nil {
		t.Fatal(err)
	}
	anonC, err := campiontest.ParseCisco(a.Text(c1Text))
	if err != nil {
		t.Fatal(err)
	}
	anonJ, err := campiontest.ParseJuniper(a.Text(c2Text))
	if err != nil {
		t.Fatal(err)
	}
	before, err := core.Diff(origC, origJ, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	after, err := core.Diff(anonC, anonJ, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(before.RouteMapDiffs) != len(after.RouteMapDiffs) {
		t.Errorf("route map diffs changed: %d vs %d",
			len(before.RouteMapDiffs), len(after.RouteMapDiffs))
	}
	if len(before.Structural) != len(after.Structural) {
		t.Errorf("structural diffs changed: %d vs %d",
			len(before.Structural), len(after.Structural))
	}
}

func TestNextQuadEdgeCases(t *testing.T) {
	cases := []struct {
		in   string
		want string
		ok   bool
	}{
		{"x 10.1.2.3 y", "10.1.2.3", true},
		{"no quads here 1.2.3", "", false},
		{"ver 1.2.3.4.5 trailing", "", false}, // 5-part runs (versions) are skipped
		{"", "", false},
		{"10.1.2.3/24", "10.1.2.3", true},
	}
	for _, c := range cases {
		_, quad, ok := nextQuad(c.in, 0)
		if ok != c.ok || (ok && quad != c.want) {
			t.Errorf("nextQuad(%q) = %q,%v want %q,%v", c.in, quad, ok, c.want, c.ok)
		}
	}
}
