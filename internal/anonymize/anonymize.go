// Package anonymize rewrites configuration text for confidential sharing
// — the paper's own evaluation anonymized the Table 7 addresses and names
// before publication. Addresses are mapped with a prefix-preserving
// permutation (two addresses share an n-bit prefix before anonymization
// exactly when they do afterwards, in the style of Crypto-PAn), so
// Campion's difference structure — which is built from prefix containment
// — is preserved: diffing two configurations anonymized under the same
// key yields the same differences as diffing the originals.
package anonymize

import (
	"fmt"
	"strings"

	"repro/internal/netaddr"
)

// Anonymizer rewrites configuration text under a fixed key.
type Anonymizer struct {
	key uint64
}

// New returns an anonymizer for the key. The same key always produces the
// same mapping, so a pair of configurations anonymized together stays
// consistently renamed.
func New(key uint64) *Anonymizer {
	return &Anonymizer{key: key ^ 0x616e6f6e796d697a}
}

// prf is a small keyed pseudo-random function over (key, value).
func (a *Anonymizer) prf(v uint64) uint64 {
	h := a.key ^ v
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Addr maps an address prefix-preservingly: bit i of the output is bit i
// of the input XORed with a PRF of the input's first i bits.
func (a *Anonymizer) Addr(ip netaddr.Addr) netaddr.Addr {
	var out uint32
	var prefix uint64 = 1 // leading 1 marks the prefix length
	for i := 0; i < 32; i++ {
		bit := uint32(0)
		if ip.Bit(i) {
			bit = 1
		}
		flip := uint32(a.prf(prefix) & 1)
		out = out<<1 | (bit ^ flip)
		prefix = prefix<<1 | uint64(bit)
	}
	return netaddr.Addr(out)
}

// keepVerbatim reports whether a dotted quad is structural rather than an
// address: contiguous netmasks (255.255.254.0), contiguous wildcard masks
// (0.0.1.255), and the zero address.
func keepVerbatim(ip netaddr.Addr) bool {
	if ip == 0 {
		return true
	}
	if _, ok := netaddr.PrefixFromMask(0, ip); ok {
		return true // contiguous netmask
	}
	w := netaddr.Wildcard{Addr: 0, Mask: ip}
	if _, ok := w.AsPrefix(); ok {
		return true // contiguous wildcard
	}
	return false
}

// Text anonymizes a configuration: every embedded IPv4 address is mapped
// prefix-preservingly (masks and wildcards are left alone, and a
// prefix/mask length after '/' is untouched), and hostname lines are
// replaced with a keyed pseudonym. Other identifiers (policy and filter
// names, communities) are left as-is, since they carry the structure
// operators need to read the diff; rename them beforehand if they are
// sensitive.
func (a *Anonymizer) Text(text string) string {
	var b strings.Builder
	i := 0
	for i < len(text) {
		start, quad, ok := nextQuad(text, i)
		if !ok {
			b.WriteString(text[i:])
			break
		}
		b.WriteString(text[i:start])
		if ip, err := netaddr.ParseAddr(quad); err == nil && !keepVerbatim(ip) {
			b.WriteString(a.Addr(ip).String())
		} else {
			b.WriteString(quad)
		}
		i = start + len(quad)
	}
	return a.renameHostnames(b.String())
}

// nextQuad scans for the next dotted-quad token at or after position i.
// It requires the quad to be delimited (not part of a longer number run).
func nextQuad(s string, i int) (int, string, bool) {
	isDigit := func(c byte) bool { return c >= '0' && c <= '9' }
	for ; i < len(s); i++ {
		if !isDigit(s[i]) {
			continue
		}
		if i > 0 && (isDigit(s[i-1]) || s[i-1] == '.') {
			continue
		}
		// Try to read d+.d+.d+.d+
		j := i
		dots := 0
		for j < len(s) && (isDigit(s[j]) || s[j] == '.') {
			if s[j] == '.' {
				// Reject consecutive dots.
				if j+1 >= len(s) || !isDigit(s[j+1]) {
					break
				}
				dots++
				if dots > 3 {
					break
				}
			}
			j++
		}
		if dots == 3 {
			quad := s[i:j]
			// Each octet must be 0..255 (ParseAddr validates later;
			// cheap sanity: length bound).
			if len(quad) <= 15 {
				return i, quad, true
			}
		}
		i = j
	}
	return 0, "", false
}

// renameHostnames rewrites IOS "hostname X" and JunOS "host-name X;"
// declarations with a keyed pseudonym.
func (a *Anonymizer) renameHostnames(text string) string {
	lines := strings.Split(text, "\n")
	for i, line := range lines {
		f := strings.Fields(line)
		if len(f) >= 2 && (f[0] == "hostname" || f[0] == "host-name") {
			var sum uint64
			for _, c := range f[1] {
				sum = sum*31 + uint64(c)
			}
			pseudo := fmt.Sprintf("router-%04x", a.prf(sum)&0xffff)
			old := f[1]
			lines[i] = strings.Replace(line, old, pseudo, 1)
		}
	}
	return strings.Join(lines, "\n")
}
