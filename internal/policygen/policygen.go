// Package policygen generates random routing-policy pairs rendered into
// both the Cisco IOS and Juniper JunOS dialects, equivalent by
// construction except for a configurable number of injected differences.
// It is the route-map analogue of internal/aclgen: the workload for
// scaling SemanticDiff on policies and for cross-vendor round-trip
// property tests (parse(renderCisco(spec)) ≡ parse(renderJuniper(spec))).
package policygen

import (
	"fmt"
	"strings"

	"repro/internal/netaddr"
)

// Params controls generation; the same Seed yields the same pair.
type Params struct {
	Seed        uint64
	Clauses     int
	Communities int // size of the community vocabulary
	Differences int // differences injected into the Juniper copy
}

// ParamsFromBytes derives bounded generation parameters from raw fuzz
// input, so native go-fuzz corpora drive the generator through its whole
// parameter space without ever producing a degenerate workload.
func ParamsFromBytes(data []byte) Params {
	at := func(i int) uint64 {
		if i < len(data) {
			return uint64(data[i])
		}
		return 0
	}
	seed := uint64(0)
	for i := 0; i < 8; i++ {
		seed = seed<<8 | at(i)
	}
	return Params{
		Seed:        seed,
		Clauses:     1 + int(at(8)%10),
		Communities: 1 + int(at(9)%8),
		Differences: int(at(10) % 5),
	}
}

// Pair is a generated policy pair in both vendor syntaxes.
type Pair struct {
	PolicyName  string
	CiscoText   string
	JuniperText string
	Injected    []string
}

type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return r.state >> 33
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// clause is the vendor-neutral policy clause spec.
type clause struct {
	deny    bool
	ranges  []netaddr.PrefixRange // OR; empty = no prefix condition
	comms   []string              // OR of community literals; empty = none
	lp      int64                 // 0 = unset
	med     int64                 // 0 = unset
	addComm string                // "" = none
}

// Generate builds a deterministic pair.
func Generate(p Params) *Pair {
	if p.Clauses <= 0 {
		p.Clauses = 20
	}
	if p.Communities <= 0 {
		p.Communities = 8
	}
	r := &rng{state: p.Seed ^ 0xabcdef12345}

	vocab := make([]string, p.Communities)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("65000:%d", 100+i)
	}

	mkRange := func(i int) netaddr.PrefixRange {
		base := netaddr.NewPrefix(netaddr.Addr(uint32(10)<<24|uint32(i&0x3fff)<<10), uint8(16+r.intn(7)))
		lo := base.Len + uint8(r.intn(3))
		hi := lo + uint8(r.intn(int(32-lo)+1))
		return netaddr.PrefixRange{Prefix: base, Lo: lo, Hi: hi}
	}

	clauses := make([]clause, p.Clauses)
	for i := range clauses {
		cl := clause{deny: r.intn(4) == 0}
		nr := 1 + r.intn(3)
		for k := 0; k < nr; k++ {
			cl.ranges = append(cl.ranges, mkRange(i*4+k))
		}
		if r.intn(3) == 0 {
			cl.comms = append(cl.comms, vocab[r.intn(len(vocab))])
			if r.intn(2) == 0 {
				cl.comms = append(cl.comms, vocab[r.intn(len(vocab))])
			}
		}
		if !cl.deny {
			switch r.intn(4) {
			case 0:
				cl.lp = int64(50 + r.intn(400))
			case 1:
				cl.med = int64(1 + r.intn(100))
			case 2:
				cl.addComm = vocab[r.intn(len(vocab))]
			}
		}
		clauses[i] = cl
	}

	// Copy for the Juniper side, then inject differences.
	jclauses := append([]clause{}, clauses...)
	var injected []string
	for d := 0; d < p.Differences && len(jclauses) > 0; d++ {
		i := r.intn(len(jclauses))
		cl := jclauses[i]
		cl.ranges = append([]netaddr.PrefixRange{}, cl.ranges...)
		cl.comms = append([]string{}, cl.comms...)
		switch r.intn(4) {
		case 0:
			cl.deny = !cl.deny
			injected = append(injected, fmt.Sprintf("clause %d: flipped action", i))
		case 1:
			if cl.lp != 0 {
				cl.lp += 10
				injected = append(injected, fmt.Sprintf("clause %d: local-pref +10", i))
			} else {
				cl.lp = 777
				injected = append(injected, fmt.Sprintf("clause %d: local-pref set", i))
			}
		case 2:
			rg := &cl.ranges[r.intn(len(cl.ranges))]
			if rg.Hi < 32 {
				rg.Hi++
			} else if rg.Lo > rg.Prefix.Len {
				rg.Lo--
			} else {
				rg.Hi--
			}
			injected = append(injected, fmt.Sprintf("clause %d: range bound changed", i))
		default:
			cl.comms = append(cl.comms, "65000:999")
			injected = append(injected, fmt.Sprintf("clause %d: extra community alternative", i))
		}
		jclauses[i] = cl
	}

	name := fmt.Sprintf("GENPOL_%d", p.Seed)
	return &Pair{
		PolicyName:  name,
		CiscoText:   renderCisco(name, clauses),
		JuniperText: renderJuniper(name, jclauses),
		Injected:    injected,
	}
}

// renderCisco emits prefix-lists, community-lists, and the route-map.
func renderCisco(name string, clauses []clause) string {
	var b strings.Builder
	b.WriteString("hostname genpol-cisco\n")
	for i, cl := range clauses {
		for _, rg := range cl.ranges {
			fmt.Fprintf(&b, "ip prefix-list PL%d permit %s", i, rg.Prefix)
			if rg.Lo != rg.Prefix.Len || rg.Hi != rg.Prefix.Len {
				if rg.Lo != rg.Prefix.Len {
					fmt.Fprintf(&b, " ge %d", rg.Lo)
				}
				fmt.Fprintf(&b, " le %d", rg.Hi)
			}
			b.WriteString("\n")
		}
		// One standard community-list per clause with OR semantics
		// (one literal per line).
		for _, c := range cl.comms {
			fmt.Fprintf(&b, "ip community-list standard CL%d permit %s\n", i, c)
		}
	}
	b.WriteString("!\n")
	for i, cl := range clauses {
		action := "permit"
		if cl.deny {
			action = "deny"
		}
		fmt.Fprintf(&b, "route-map %s %s %d\n", name, action, (i+1)*10)
		if len(cl.ranges) > 0 {
			fmt.Fprintf(&b, " match ip address prefix-list PL%d\n", i)
		}
		if len(cl.comms) > 0 {
			fmt.Fprintf(&b, " match community CL%d\n", i)
		}
		if !cl.deny {
			if cl.lp != 0 {
				fmt.Fprintf(&b, " set local-preference %d\n", cl.lp)
			}
			if cl.med != 0 {
				fmt.Fprintf(&b, " set metric %d\n", cl.med)
			}
			if cl.addComm != "" {
				fmt.Fprintf(&b, " set community %s additive\n", cl.addComm)
			}
		}
	}
	return b.String()
}

// renderJuniper emits communities and the policy-statement using
// route-filter ranges (prefix-length-range expresses the ge/le bounds)
// and an explicit final reject matching IOS's implicit deny.
func renderJuniper(name string, clauses []clause) string {
	var b strings.Builder
	b.WriteString("system { host-name genpol-juniper; }\npolicy-options {\n")
	commName := func(i, k int) string { return fmt.Sprintf("T%d_%d", i, k) }
	for i, cl := range clauses {
		for k, c := range cl.comms {
			fmt.Fprintf(&b, "    community %s members %s;\n", commName(i, k), c)
		}
	}
	fmt.Fprintf(&b, "    policy-statement %s {\n", name)
	for i, cl := range clauses {
		fmt.Fprintf(&b, "        term t%d {\n", i)
		if len(cl.ranges) > 0 || len(cl.comms) > 0 {
			b.WriteString("            from {\n")
			for _, rg := range cl.ranges {
				fmt.Fprintf(&b, "                route-filter %s prefix-length-range /%d-/%d;\n",
					rg.Prefix, rg.Lo, rg.Hi)
			}
			if len(cl.comms) > 0 {
				names := make([]string, len(cl.comms))
				for k := range cl.comms {
					names[k] = commName(i, k)
				}
				fmt.Fprintf(&b, "                community [ %s ];\n", strings.Join(names, " "))
			}
			b.WriteString("            }\n")
		}
		if cl.deny {
			b.WriteString("            then reject;\n")
		} else {
			b.WriteString("            then {\n")
			if cl.lp != 0 {
				fmt.Fprintf(&b, "                local-preference %d;\n", cl.lp)
			}
			if cl.med != 0 {
				fmt.Fprintf(&b, "                metric %d;\n", cl.med)
			}
			if cl.addComm != "" {
				fmt.Fprintf(&b, "                community add ADD%d;\n", i)
			}
			b.WriteString("                accept;\n")
			b.WriteString("            }\n")
		}
		b.WriteString("        }\n")
	}
	b.WriteString("        term final { then reject; }\n")
	b.WriteString("    }\n}\n")
	// Emit the add-communities after use sites are known.
	var adds strings.Builder
	for i, cl := range clauses {
		if !cl.deny && cl.addComm != "" {
			fmt.Fprintf(&adds, "    community ADD%d members %s;\n", i, cl.addComm)
		}
	}
	out := b.String()
	if adds.Len() > 0 {
		out = strings.Replace(out, "policy-options {\n",
			"policy-options {\n"+adds.String(), 1)
	}
	return out
}
