package policygen

import (
	"testing"
	"testing/quick"

	"repro/internal/cisco"
	"repro/internal/juniper"
	"repro/internal/semdiff"
	"repro/internal/symbolic"
)

func TestDeterministic(t *testing.T) {
	a := Generate(Params{Seed: 1, Clauses: 10, Differences: 2})
	b := Generate(Params{Seed: 1, Clauses: 10, Differences: 2})
	if a.CiscoText != b.CiscoText || a.JuniperText != b.JuniperText {
		t.Error("same seed must generate identical pairs")
	}
}

// TestCrossVendorEquivalentByConstruction: with zero injected
// differences, parsing both renderings and running SemanticDiff must find
// nothing — the strongest end-to-end consistency check of parsers,
// encodings, and the differ at once.
func TestCrossVendorEquivalentByConstruction(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		pair := Generate(Params{Seed: seed, Clauses: 15, Differences: 0})
		c, err := cisco.Parse("c.cfg", pair.CiscoText)
		if err != nil {
			t.Fatal(err)
		}
		j, err := juniper.Parse("j.cfg", pair.JuniperText)
		if err != nil {
			t.Fatal(err)
		}
		for _, u := range c.Unrecognized {
			t.Fatalf("seed %d: cisco unrecognized %q", seed, u.Text())
		}
		for _, u := range j.Unrecognized {
			t.Fatalf("seed %d: juniper unrecognized %q", seed, u.Text())
		}
		enc := symbolic.NewRouteEncoding(c, j)
		diffs, err := semdiff.DiffRouteMaps(enc, c, c.RouteMaps[pair.PolicyName], j, j.RouteMaps[pair.PolicyName])
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diffs {
			a := enc.F.AnySat(d.Inputs)
			t.Errorf("seed %d: spurious diff on %v (%v vs %v)", seed,
				enc.RouteFromAssignment(a), d.Path1.Accept, d.Path2.Accept)
		}
		if t.Failed() {
			t.Fatalf("seed %d failed; cisco:\n%s\njuniper:\n%s", seed, pair.CiscoText, pair.JuniperText)
		}
	}
}

// TestInjectedDifferencesSurface: injected edits must produce at least
// one behavioral difference (unless shadowed, which the small clause
// count makes unlikely across seeds — assert on aggregate).
func TestInjectedDifferencesSurface(t *testing.T) {
	found := 0
	for seed := uint64(0); seed < 6; seed++ {
		pair := Generate(Params{Seed: seed, Clauses: 12, Differences: 3})
		c, err := cisco.Parse("c.cfg", pair.CiscoText)
		if err != nil {
			t.Fatal(err)
		}
		j, err := juniper.Parse("j.cfg", pair.JuniperText)
		if err != nil {
			t.Fatal(err)
		}
		enc := symbolic.NewRouteEncoding(c, j)
		diffs, err := semdiff.DiffRouteMaps(enc, c, c.RouteMaps[pair.PolicyName], j, j.RouteMaps[pair.PolicyName])
		if err != nil {
			t.Fatal(err)
		}
		found += len(diffs)
	}
	if found == 0 {
		t.Error("no injected difference surfaced across six seeds")
	}
}

// TestEquivalenceProperty is the quick.Check form of the by-construction
// equivalence, over random seeds/sizes.
func TestEquivalenceProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("slow property test")
	}
	f := func(seed uint16, size uint8) bool {
		pair := Generate(Params{Seed: uint64(seed), Clauses: 3 + int(size%10), Differences: 0})
		c, err := cisco.Parse("c.cfg", pair.CiscoText)
		if err != nil {
			return false
		}
		j, err := juniper.Parse("j.cfg", pair.JuniperText)
		if err != nil {
			return false
		}
		enc := symbolic.NewRouteEncoding(c, j)
		eq, err := semdiff.EquivalentRouteMaps(enc, c, c.RouteMaps[pair.PolicyName], j, j.RouteMaps[pair.PolicyName])
		return err == nil && eq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
