package oracle

import (
	"strings"
	"testing"

	"repro/internal/aclgen"
	"repro/internal/campiontest"
	"repro/internal/cisco"
	"repro/internal/ir"
	"repro/internal/juniper"
	"repro/internal/netaddr"
	"repro/internal/policygen"
)

func mustPrefix(t *testing.T, s string) netaddr.Prefix {
	t.Helper()
	p, err := netaddr.ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestFigure1Traces pins down the oracle's decisions, and the traces
// explaining them, on the paper's Figure 1 Cisco policy.
func TestFigure1Traces(t *testing.T) {
	cfg, err := campiontest.ParseCisco(campiontest.Figure1Cisco)
	if err != nil {
		t.Fatal(err)
	}
	rm := cfg.RouteMaps["POL"]

	// A route inside NETS is denied by clause 10.
	r := ir.NewRoute(mustPrefix(t, "10.9.1.0/24"))
	d := EvalRouteMap(cfg, rm, r)
	if d.Action != ir.Deny {
		t.Fatalf("10.9.1.0/24: got %v, want deny", d.Action)
	}
	if d.Terminal == nil || d.Terminal.Seq != 10 {
		t.Fatalf("10.9.1.0/24: expected clause 10 to decide, got %+v", d.Terminal)
	}
	if !strings.Contains(d.String(), "MATCH") || !strings.Contains(d.String(), "prefix-list") {
		t.Errorf("trace lacks match explanation:\n%s", d)
	}

	// A community-tagged route outside NETS is denied by clause 20.
	r = ir.NewRoute(mustPrefix(t, "192.168.0.0/16"))
	r.Communities["10:10"] = true
	d = EvalRouteMap(cfg, rm, r)
	if d.Action != ir.Deny || d.Terminal == nil || d.Terminal.Seq != 20 {
		t.Fatalf("community route: got %v by %+v, want deny by clause 20", d.Action, d.Terminal)
	}

	// Anything else is permitted by clause 30 with local-pref 30.
	r = ir.NewRoute(mustPrefix(t, "192.168.0.0/16"))
	d = EvalRouteMap(cfg, rm, r)
	if !d.Permits() {
		t.Fatalf("plain route: got %v, want permit", d.Action)
	}
	if d.Route.LocalPref != 30 {
		t.Fatalf("plain route: local-pref = %d, want 30", d.Route.LocalPref)
	}
	// The input route must not have been mutated.
	if r.LocalPref != 100 {
		t.Fatalf("oracle mutated its input: LocalPref=%d", r.LocalPref)
	}
	if !strings.Contains(d.String(), "=> permit") {
		t.Errorf("trace lacks verdict line:\n%s", d)
	}
}

// TestFigure1Bug reproduces the paper's Figure 1 discrepancy concretely:
// the buggy Juniper translation treats a /24 inside 10.9.0.0/16
// differently because JunOS prefix-lists match exactly while the IOS
// list says "le 32".
func TestFigure1Bug(t *testing.T) {
	ccfg, err := campiontest.ParseCisco(campiontest.Figure1Cisco)
	if err != nil {
		t.Fatal(err)
	}
	jcfg, err := campiontest.ParseJuniper(campiontest.Figure1Juniper)
	if err != nil {
		t.Fatal(err)
	}
	r := ir.NewRoute(mustPrefix(t, "10.9.1.0/24"))
	cd := EvalRouteMap(ccfg, ccfg.RouteMaps["POL"], r)
	jd := EvalRouteMap(jcfg, jcfg.RouteMaps["POL"], r)
	if cd.Action != ir.Deny {
		t.Fatalf("cisco: got %v, want deny", cd.Action)
	}
	if jd.Action != ir.Permit {
		t.Fatalf("buggy juniper: got %v, want permit (the bug)", jd.Action)
	}

	// The fixed translation agrees with Cisco.
	fcfg, err := campiontest.ParseJuniper(campiontest.Figure1JuniperFixed)
	if err != nil {
		t.Fatal(err)
	}
	fd := EvalRouteMap(fcfg, fcfg.RouteMaps["POL"], r)
	if fd.Action != ir.Deny {
		t.Fatalf("fixed juniper: got %v, want deny", fd.Action)
	}
}

// TestEvalChainSemantics pins the chain-resolution rules the oracle must
// share with core.ResolveChain: no names → permit-all; a single missing
// name → permit-all; multiple maps → concatenated clauses with the last
// defined map's default action.
func TestEvalChainSemantics(t *testing.T) {
	cfg, err := campiontest.ParseCisco(campiontest.Figure1Cisco)
	if err != nil {
		t.Fatal(err)
	}
	r := ir.NewRoute(mustPrefix(t, "10.9.1.0/24"))

	if d := EvalChain(cfg, nil, r); !d.Permits() {
		t.Fatalf("empty chain: got %v, want permit", d.Action)
	}
	if d := EvalChain(cfg, []string{"NO_SUCH_MAP"}, r); !d.Permits() {
		t.Fatalf("missing map: got %v, want permit", d.Action)
	}
	if d := EvalChain(cfg, []string{"POL"}, r); d.Action != ir.Deny {
		t.Fatalf("chain [POL]: got %v, want deny", d.Action)
	}
	if d := EvalChain(cfg, []string{"NO_SUCH_MAP", "POL"}, r); d.Action != ir.Deny {
		t.Fatalf("chain [missing, POL]: got %v, want deny", d.Action)
	}
}

// TestOracleAgreesWithIREvaluator cross-checks the two independent
// route-map interpreters over generated policies and a grid of concrete
// routes: any divergence is a bug in one of them.
func TestOracleAgreesWithIREvaluator(t *testing.T) {
	probes := func(t *testing.T) []*ir.Route {
		var out []*ir.Route
		for _, p := range []string{"10.0.0.0/16", "10.0.4.0/22", "10.32.0.0/11", "192.168.1.0/24", "0.0.0.0/0"} {
			r := ir.NewRoute(mustPrefix(t, p))
			out = append(out, r)
			rc := ir.NewRoute(mustPrefix(t, p))
			rc.Communities["65000:100"] = true
			rc.Communities["65000:103"] = true
			out = append(out, rc)
		}
		return out
	}
	for seed := uint64(0); seed < 60; seed++ {
		pair := policygen.Generate(policygen.Params{Seed: seed, Clauses: 6, Differences: int(seed % 3)})
		for _, text := range []struct {
			parse func(string, string) (*ir.Config, error)
			src   string
		}{{cisco.Parse, pair.CiscoText}, {juniper.Parse, pair.JuniperText}} {
			cfg, err := text.parse("gen.cfg", text.src)
			if err != nil {
				t.Fatal(err)
			}
			rm := cfg.RouteMaps[pair.PolicyName]
			for _, r := range probes(t) {
				od := EvalRouteMap(cfg, rm, r)
				id := cfg.EvalRouteMap(rm, r)
				if od.Action != id.Action {
					t.Fatalf("seed %d: oracle %v vs ir %v on %v\n%s", seed, od.Action, id.Action, r, od)
				}
				if od.Action == ir.Permit && !od.Route.Equal(id.Route) {
					t.Fatalf("seed %d: outputs differ on %v: oracle %v vs ir %v", seed, r, od.Route, id.Route)
				}
			}
		}
	}
}

// TestACLOracle pins the ACL interpreter's behavior: first match wins,
// implicit deny, trace shows the deciding line.
func TestACLOracle(t *testing.T) {
	pair := aclgen.Generate(aclgen.Params{Seed: 3, Rules: 8})
	acl := pair.Cisco

	// Cross-check against the IR evaluator on a probe grid.
	var probes []ir.Packet
	for _, l := range acl.Lines {
		p := ir.Packet{Protocol: ir.ProtoNumTCP, DstPort: 80}
		if !l.Protocol.Any {
			p.Protocol = l.Protocol.Number
		}
		if len(l.Src) > 0 {
			p.Src = l.Src[0].Addr
		}
		if len(l.Dst) > 0 {
			p.Dst = l.Dst[0].Addr
		}
		if len(l.DstPorts) > 0 {
			p.DstPort = l.DstPorts[0].Lo
		}
		probes = append(probes, p)
	}
	probes = append(probes, ir.Packet{Protocol: ir.ProtoNumUDP, DstPort: 53})
	for _, p := range probes {
		od := EvalACL(acl, p)
		if got, _ := acl.Evaluate(p); od.Permits() != (got == ir.Permit) {
			t.Fatalf("oracle %v vs ir %v on %+v\n%s", od.Action, got, p, od)
		}
	}

	// Implicit deny: an empty ACL denies everything and says so.
	empty := &ir.ACL{Name: "EMPTY"}
	d := EvalACL(empty, ir.Packet{})
	if d.Permits() {
		t.Fatal("empty ACL permitted a packet")
	}
	if d.Line != nil {
		t.Fatalf("implicit deny should have no deciding line, got %+v", d.Line)
	}
	if !strings.Contains(d.String(), "implicit deny") {
		t.Errorf("trace should mention implicit deny:\n%s", d)
	}
}

// TestEstablishedSemantics: "established" requires TCP with ACK or RST.
func TestEstablishedSemantics(t *testing.T) {
	l := ir.NewACLLine(ir.Permit)
	l.Protocol = ir.ProtoNumber(ir.ProtoNumTCP)
	l.Established = true
	acl := &ir.ACL{Name: "EST", Lines: []*ir.ACLLine{l}}

	cases := []struct {
		p    ir.Packet
		want bool
	}{
		{ir.Packet{Protocol: ir.ProtoNumTCP, TCPAck: true}, true},
		{ir.Packet{Protocol: ir.ProtoNumTCP, TCPRst: true}, true},
		{ir.Packet{Protocol: ir.ProtoNumTCP}, false},
		{ir.Packet{Protocol: ir.ProtoNumUDP, TCPAck: true}, false},
	}
	for _, c := range cases {
		if got := EvalACL(acl, c.p).Permits(); got != c.want {
			t.Errorf("established on %+v: got %v, want %v", c.p, got, c.want)
		}
		if refAction, _ := acl.Evaluate(c.p); (refAction == ir.Permit) != c.want {
			t.Errorf("ir.Evaluate disagrees with expectation on %+v", c.p)
		}
	}
}
