// Package oracle is a concrete reference interpreter for Campion's IR:
// it evaluates a route map on one fully-concrete BGP announcement, or an
// ACL on one concrete packet header, by walking the IR directly — no
// BDDs, no symbolic encodings, and no sharing of evaluation code with
// either the symbolic engine or ir's own Eval helpers.
//
// Its purpose is differential testing (internal/difftest): the symbolic
// engine claims two configurations disagree on some input region, the
// oracle independently confirms or refutes the claim on a concrete
// witness. To make disagreements debuggable, every evaluation produces a
// decision trace explaining which clause matched and why.
//
// The oracle intentionally re-implements the match and transform
// semantics from the IR definition, reusing only leaf primitives whose
// behavior is fixed by data (community.Matcher regex matching, netaddr
// range arithmetic). Where it must agree with ir.EvalRouteMap and
// ACL.Evaluate, tests cross-check all three implementations.
package oracle

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/community"
	"repro/internal/ir"
	"repro/internal/netaddr"
)

// RouteStep records the oracle's visit to one route-map clause.
type RouteStep struct {
	// Clause is the visited clause.
	Clause *ir.RouteMapClause
	// Matched reports whether every match condition held.
	Matched bool
	// Why explains each match condition's outcome, in clause order. For
	// a non-matching clause the last entry names the condition that
	// failed (evaluation short-circuits like the routers do).
	Why []string
}

// RouteDecision is the oracle's verdict on one route.
type RouteDecision struct {
	// Action is the final permit/deny disposition.
	Action ir.Action
	// Route is the transformed announcement (nil when denied).
	Route *ir.Route
	// Terminal is the clause that decided, nil when the map's default
	// action applied.
	Terminal *ir.RouteMapClause
	// Steps traces every clause visited, in order.
	Steps []RouteStep
}

// Permits reports whether the decision admits the route.
func (d RouteDecision) Permits() bool { return d.Action == ir.Permit }

// Disagrees reports whether two decisions on the same input constitute a
// behavioral difference: opposite dispositions, or both permitting with
// unequal transformed routes. This is the single definition of
// "concrete disagreement" shared by the differential harness and the
// repair verifier.
func (d RouteDecision) Disagrees(o RouteDecision) bool {
	if d.Action != o.Action {
		return true
	}
	return d.Action == ir.Permit && !d.Route.Equal(o.Route)
}

// String renders the trace for humans: one line per visited clause and a
// final verdict line. This is the format EXPERIMENTS.md documents for
// reading oracle/symbolic disagreements.
func (d RouteDecision) String() string {
	var b strings.Builder
	for _, s := range d.Steps {
		verdict := "no match"
		if s.Matched {
			verdict = "MATCH"
		}
		fmt.Fprintf(&b, "clause %s [%s]: %s", clauseLabel(s.Clause), s.Clause.Action, verdict)
		if len(s.Why) > 0 {
			fmt.Fprintf(&b, " (%s)", strings.Join(s.Why, "; "))
		}
		b.WriteString("\n")
	}
	if d.Terminal != nil {
		fmt.Fprintf(&b, "=> %s by clause %s", d.Action, clauseLabel(d.Terminal))
	} else {
		fmt.Fprintf(&b, "=> %s by default action", d.Action)
	}
	if d.Route != nil {
		fmt.Fprintf(&b, ": %s", d.Route)
	}
	return b.String()
}

func clauseLabel(cl *ir.RouteMapClause) string {
	if cl.Name != "" {
		return cl.Name
	}
	return fmt.Sprintf("%d", cl.Seq)
}

// EvalRouteMap runs the announcement through the route map under the
// configuration's named lists and returns the traced decision. The input
// route is never mutated.
func EvalRouteMap(cfg *ir.Config, rm *ir.RouteMap, in *ir.Route) RouteDecision {
	r := cloneRoute(in)
	var d RouteDecision
	for _, cl := range rm.Clauses {
		matched, why := clauseMatches(cfg, cl, r)
		d.Steps = append(d.Steps, RouteStep{Clause: cl, Matched: matched, Why: why})
		if !matched {
			continue
		}
		switch cl.Action {
		case ir.ClauseDeny:
			d.Action = ir.Deny
			d.Terminal = cl
			return d
		case ir.ClausePermit:
			applySets(cfg, cl.Sets, r)
			d.Action = ir.Permit
			d.Route = r
			d.Terminal = cl
			return d
		case ir.ClauseFallthrough:
			applySets(cfg, cl.Sets, r)
		}
	}
	d.Action = rm.DefaultAction
	if d.Action == ir.Permit {
		d.Route = r
	}
	return d
}

// EvalChain evaluates a policy chain the way the diff engine models it
// (core.ResolveChain): an empty chain or a single undefined name is an
// accept-all identity; a multi-name chain concatenates the clauses of
// every defined map with the last defined map's default action.
func EvalChain(cfg *ir.Config, names []string, in *ir.Route) RouteDecision {
	def := ir.Permit
	var maps []*ir.RouteMap
	for _, n := range names {
		if rm := cfg.RouteMaps[n]; rm != nil {
			maps = append(maps, rm)
			def = rm.DefaultAction
		}
	}
	merged := &ir.RouteMap{DefaultAction: def}
	for _, rm := range maps {
		merged.Clauses = append(merged.Clauses, rm.Clauses...)
	}
	return EvalRouteMap(cfg, merged, in)
}

// cloneRoute deep-copies a route without relying on ir.Route.Clone.
func cloneRoute(r *ir.Route) *ir.Route {
	out := &ir.Route{
		Prefix:      r.Prefix,
		Communities: make(map[string]bool, len(r.Communities)),
		LocalPref:   r.LocalPref,
		MED:         r.MED,
		Weight:      r.Weight,
		Tag:         r.Tag,
		NextHop:     r.NextHop,
		Protocol:    r.Protocol,
	}
	for c, ok := range r.Communities {
		if ok {
			out.Communities[c] = true
		}
	}
	out.ASPath = append([]int64(nil), r.ASPath...)
	return out
}

func clauseMatches(cfg *ir.Config, cl *ir.RouteMapClause, r *ir.Route) (bool, []string) {
	var why []string
	for _, m := range cl.Matches {
		ok, reason := matchHolds(cfg, m, r)
		why = append(why, reason)
		if !ok {
			return false, why
		}
	}
	return true, why
}

func matchHolds(cfg *ir.Config, m ir.Match, r *ir.Route) (bool, string) {
	switch m := m.(type) {
	case ir.MatchPrefixList:
		for _, name := range m.Lists {
			if hit, entry := prefixListPermits(cfg.PrefixLists[name], r.Prefix); hit {
				return true, fmt.Sprintf("prefix-list %s permits %s (entry %d)", name, r.Prefix, entry)
			}
		}
		return false, fmt.Sprintf("no prefix-list of [%s] permits %s", strings.Join(m.Lists, " "), r.Prefix)
	case ir.MatchPrefixListFilter:
		pl := cfg.PrefixLists[m.List]
		if pl == nil {
			return false, fmt.Sprintf("prefix-list %s undefined", m.List)
		}
		for i, e := range pl.Entries {
			rg := modifiedRange(e.Range, m.Modifier)
			if rangeContains(rg, r.Prefix) {
				if e.Action == ir.Permit {
					return true, fmt.Sprintf("prefix-list %s %s entry %d permits %s", m.List, m.Modifier, i, r.Prefix)
				}
				return false, fmt.Sprintf("prefix-list %s %s entry %d denies %s", m.List, m.Modifier, i, r.Prefix)
			}
		}
		return false, fmt.Sprintf("prefix-list %s %s: no entry covers %s", m.List, m.Modifier, r.Prefix)
	case ir.MatchPrefixRanges:
		for _, pr := range m.Ranges {
			if rangeContains(pr, r.Prefix) {
				return true, fmt.Sprintf("route-filter %s covers %s", pr, r.Prefix)
			}
		}
		return false, fmt.Sprintf("no route-filter range covers %s", r.Prefix)
	case ir.MatchCommunity:
		for _, name := range m.Lists {
			if hit, entry := communityListPermits(cfg.CommunityLists[name], r); hit {
				return true, fmt.Sprintf("community-list %s entry %d matches [%s]", name, entry, strings.Join(communityStrings(r), " "))
			}
		}
		return false, fmt.Sprintf("no community-list of [%s] matches [%s]", strings.Join(m.Lists, " "), strings.Join(communityStrings(r), " "))
	case ir.MatchASPath:
		path := asPathString(r)
		for _, name := range m.Lists {
			if hit, entry := asPathListPermits(cfg.ASPathLists[name], path); hit {
				return true, fmt.Sprintf("as-path list %s entry %d matches %q", name, entry, path)
			}
		}
		return false, fmt.Sprintf("no as-path list of [%s] matches %q", strings.Join(m.Lists, " "), path)
	case ir.MatchMED:
		if r.MED == m.Value {
			return true, fmt.Sprintf("med == %d", m.Value)
		}
		return false, fmt.Sprintf("med %d != %d", r.MED, m.Value)
	case ir.MatchTag:
		if r.Tag == m.Value {
			return true, fmt.Sprintf("tag == %d", m.Value)
		}
		return false, fmt.Sprintf("tag %d != %d", r.Tag, m.Value)
	case ir.MatchProtocol:
		for _, p := range m.Protocols {
			if r.Protocol == p {
				return true, fmt.Sprintf("protocol %s", p)
			}
		}
		return false, fmt.Sprintf("protocol %s not in %s", r.Protocol, m)
	case ir.MatchNextHop:
		nh := netaddr.Prefix{Addr: r.NextHop, Len: 32}
		for _, name := range m.Lists {
			if hit, entry := prefixListPermits(cfg.PrefixLists[name], nh); hit {
				return true, fmt.Sprintf("next-hop list %s permits %s (entry %d)", name, r.NextHop, entry)
			}
		}
		return false, fmt.Sprintf("no next-hop list of [%s] permits %s", strings.Join(m.Lists, " "), r.NextHop)
	}
	return false, fmt.Sprintf("unknown match %T", m)
}

// prefixListPermits implements first-entry-wins semantics over a named
// prefix list: the first covering entry decides; an undefined or
// exhausted list matches nothing.
func prefixListPermits(pl *ir.PrefixList, p netaddr.Prefix) (bool, int) {
	if pl == nil {
		return false, -1
	}
	for i, e := range pl.Entries {
		if rangeContains(e.Range, p) {
			return e.Action == ir.Permit, i
		}
	}
	return false, -1
}

// modifiedRange applies a JunOS match-type modifier to a prefix-list
// entry range (independent re-statement of ir.ApplyRangeModifier).
func modifiedRange(r netaddr.PrefixRange, modifier string) netaddr.PrefixRange {
	switch modifier {
	case "orlonger":
		return netaddr.PrefixRange{Prefix: r.Prefix, Lo: r.Lo, Hi: 32}
	case "longer":
		return netaddr.PrefixRange{Prefix: r.Prefix, Lo: r.Hi + 1, Hi: 32}
	}
	return r
}

// rangeContains re-states prefix-range membership from first principles:
// the candidate's address bits agree with the range prefix on the
// range's mask length, and the candidate's length lies in [Lo, Hi].
func rangeContains(rg netaddr.PrefixRange, p netaddr.Prefix) bool {
	if rg.Lo > rg.Hi {
		return false
	}
	if p.Len < rg.Lo || p.Len > rg.Hi {
		return false
	}
	mask := netaddr.Mask(int(rg.Prefix.Len))
	return uint32(p.Addr)&mask == uint32(rg.Prefix.Addr)&mask
}

func communityStrings(r *ir.Route) []string {
	var out []string
	for c, ok := range r.Communities {
		if ok {
			out = append(out, c)
		}
	}
	sort.Strings(out)
	return out
}

func asPathString(r *ir.Route) string {
	parts := make([]string, len(r.ASPath))
	for i, a := range r.ASPath {
		parts[i] = fmt.Sprintf("%d", a)
	}
	return strings.Join(parts, " ")
}

// communityListPermits walks the list's entries first-match-wins; an
// entry matches when every conjunct matcher matches some community the
// route carries (and the conjunct set is non-empty).
func communityListPermits(l *ir.CommunityList, r *ir.Route) (bool, int) {
	if l == nil {
		return false, -1
	}
	for i, e := range l.Entries {
		if communityEntryMatches(e, r) {
			return e.Action == ir.Permit, i
		}
	}
	return false, -1
}

func communityEntryMatches(e ir.CommunityListEntry, r *ir.Route) bool {
	if len(e.Conjuncts) == 0 {
		return false
	}
	for _, m := range e.Conjuncts {
		if !someCommunityMatches(r, m) {
			return false
		}
	}
	return true
}

func someCommunityMatches(r *ir.Route, m ir.CommunityMatcher) bool {
	if m.Regex == "" {
		return r.Communities[m.Literal]
	}
	cm, err := community.Compile(m.Regex)
	if err != nil {
		return false
	}
	for c, ok := range r.Communities {
		if ok && cm.Matches(c) {
			return true
		}
	}
	return false
}

func asPathListPermits(l *ir.ASPathList, path string) (bool, int) {
	if l == nil {
		return false, -1
	}
	for i, e := range l.Entries {
		cm, err := community.Compile(e.Regex)
		if err != nil {
			continue
		}
		if cm.Matches(path) {
			return e.Action == ir.Permit, i
		}
	}
	return false, -1
}

func applySets(cfg *ir.Config, sets []ir.SetAction, r *ir.Route) {
	for _, s := range sets {
		switch s := s.(type) {
		case ir.SetLocalPref:
			r.LocalPref = s.Value
		case ir.SetMED:
			r.MED = s.Value
		case ir.SetWeight:
			r.Weight = s.Value
		case ir.SetTag:
			r.Tag = s.Value
		case ir.SetNextHop:
			r.NextHop = s.Addr
		case ir.SetCommunities:
			if !s.Additive {
				r.Communities = map[string]bool{}
			}
			for _, c := range s.Communities {
				r.Communities[c] = true
			}
		case ir.DeleteCommunity:
			l := cfg.CommunityLists[s.List]
			if l == nil {
				continue
			}
			for c := range r.Communities {
				if deleteMatches(l, c) {
					delete(r.Communities, c)
				}
			}
		case ir.SetASPathPrepend:
			r.ASPath = append(append([]int64{}, s.ASNs...), r.ASPath...)
		}
	}
}

// deleteMatches implements comm-list delete: only single-conjunct
// entries participate, and the first one matching the community decides.
func deleteMatches(l *ir.CommunityList, comm string) bool {
	for _, e := range l.Entries {
		if len(e.Conjuncts) != 1 {
			continue
		}
		m := e.Conjuncts[0]
		var hit bool
		if m.Regex == "" {
			hit = m.Literal == comm
		} else if cm, err := community.Compile(m.Regex); err == nil {
			hit = cm.Matches(comm)
		}
		if hit {
			return e.Action == ir.Permit
		}
	}
	return false
}
