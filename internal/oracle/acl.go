package oracle

import (
	"fmt"
	"strings"

	"repro/internal/ir"
	"repro/internal/netaddr"
)

// ACLStep records the oracle's visit to one ACL line.
type ACLStep struct {
	Line    *ir.ACLLine
	Matched bool
	// Why explains the first failing constraint, or summarizes the hit.
	Why string
}

// ACLDecision is the oracle's verdict on one packet.
type ACLDecision struct {
	Action ir.Action
	// Line is the matching line; nil means the implicit trailing deny.
	Line  *ir.ACLLine
	Steps []ACLStep
}

// Permits reports whether the decision admits the packet.
func (d ACLDecision) Permits() bool { return d.Action == ir.Permit }

// String renders the trace, one line per visited ACL rule.
func (d ACLDecision) String() string {
	var b strings.Builder
	for _, s := range d.Steps {
		verdict := "no match"
		if s.Matched {
			verdict = "MATCH"
		}
		fmt.Fprintf(&b, "line %d [%s]: %s (%s)\n", s.Line.Seq, s.Line.Action, verdict, s.Why)
	}
	if d.Line != nil {
		fmt.Fprintf(&b, "=> %s by line %d", d.Action, d.Line.Seq)
	} else {
		fmt.Fprintf(&b, "=> %s by implicit deny", d.Action)
	}
	return b.String()
}

// EvalACL runs the packet through the ACL first-match-wins, with the
// implicit deny when no line matches.
func EvalACL(acl *ir.ACL, p ir.Packet) ACLDecision {
	var d ACLDecision
	for _, l := range acl.Lines {
		matched, why := lineMatches(l, p)
		d.Steps = append(d.Steps, ACLStep{Line: l, Matched: matched, Why: why})
		if matched {
			d.Action = l.Action
			d.Line = l
			return d
		}
	}
	d.Action = ir.Deny
	return d
}

func lineMatches(l *ir.ACLLine, p ir.Packet) (bool, string) {
	if !l.Protocol.Any && l.Protocol.Number != p.Protocol {
		return false, fmt.Sprintf("protocol %d != %s", p.Protocol, l.Protocol)
	}
	if !addrMatches(l.Src, p.Src) {
		return false, fmt.Sprintf("src %s outside source matchers", p.Src)
	}
	if !addrMatches(l.Dst, p.Dst) {
		return false, fmt.Sprintf("dst %s outside destination matchers", p.Dst)
	}
	if len(l.SrcPorts) > 0 && !portMatches(l.SrcPorts, p.SrcPort) {
		return false, fmt.Sprintf("src port %d outside ranges", p.SrcPort)
	}
	if len(l.DstPorts) > 0 && !portMatches(l.DstPorts, p.DstPort) {
		return false, fmt.Sprintf("dst port %d outside ranges", p.DstPort)
	}
	if l.Established {
		if p.Protocol != ir.ProtoNumTCP {
			return false, "established requires tcp"
		}
		if !p.TCPAck && !p.TCPRst {
			return false, "established requires ack or rst"
		}
	}
	if l.ICMPType >= 0 {
		if p.Protocol != ir.ProtoNumICMP {
			return false, "icmp-type requires icmp"
		}
		if int(p.ICMPType) != l.ICMPType {
			return false, fmt.Sprintf("icmp type %d != %d", p.ICMPType, l.ICMPType)
		}
	}
	return true, "all constraints hold"
}

// addrMatches re-states wildcard matching from first principles: the
// address agrees with the matcher's pattern on every bit the wildcard
// mask does not free. An empty matcher set matches any address.
func addrMatches(ws []netaddr.Wildcard, a netaddr.Addr) bool {
	if len(ws) == 0 {
		return true
	}
	for _, w := range ws {
		if uint32(a)&^uint32(w.Mask) == uint32(w.Addr)&^uint32(w.Mask) {
			return true
		}
	}
	return false
}

func portMatches(rs []netaddr.PortRange, p uint16) bool {
	for _, r := range rs {
		if p >= r.Lo && p <= r.Hi {
			return true
		}
	}
	return false
}
