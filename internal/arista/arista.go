// Package arista parses Arista EOS configurations. EOS's configuration
// language is IOS-compatible for every component Campion models (§1 of
// the paper motivates router replacement with a Juniper → Arista
// upgrade), so the parser delegates to the shared IOS-family parser after
// normalizing the few EOS spelling differences, and applies EOS's default
// administrative distances (eBGP and iBGP are both 200 on EOS, unlike
// IOS's 20/200).
package arista

import (
	"strings"

	"repro/internal/cisco"
	"repro/internal/ir"
)

// Parse parses an EOS configuration.
func Parse(file, text string) (*ir.Config, error) {
	return cisco.ParseWithVendor(ir.VendorArista, file, normalize(text))
}

// normalize rewrites EOS spellings into their IOS equivalents:
//
//   - "ip access-list NAME" (EOS access lists are extended by default)
//   - "maximum-routes N" on static routes and similar EOS-only suffixes
//     are left to the lenient parser's unrecognized handling
func normalize(text string) string {
	lines := strings.Split(text, "\n")
	for i, line := range lines {
		trimmed := strings.TrimSpace(line)
		f := strings.Fields(trimmed)
		if len(f) == 3 && f[0] == "ip" && f[1] == "access-list" {
			// EOS: "ip access-list NAME" opens an extended ACL.
			lines[i] = strings.Replace(line, "ip access-list ", "ip access-list extended ", 1)
		}
	}
	return strings.Join(lines, "\n")
}
