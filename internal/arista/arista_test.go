package arista

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/juniper"
	"repro/internal/netaddr"
)

const eosConfig = `hostname spine1-eos
!
ip prefix-list NETS permit 10.9.0.0/16 le 32
!
route-map POL deny 10
 match ip address prefix-list NETS
route-map POL permit 20
 set local-preference 150
!
ip access-list VM_FILTER
 permit tcp any 10.60.0.0 0.0.255.255 eq 80
!
interface Ethernet1
 ip address 10.0.12.1 255.255.255.0
!
ip route 10.1.1.2 255.255.255.254 10.2.2.2
!
router bgp 65001
 neighbor 10.0.12.2 remote-as 65002
 neighbor 10.0.12.2 route-map POL out
 neighbor 10.0.12.2 send-community
`

func TestParseEOS(t *testing.T) {
	cfg, err := Parse("spine1.cfg", eosConfig)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Vendor != ir.VendorArista {
		t.Errorf("vendor = %v", cfg.Vendor)
	}
	if cfg.Hostname != "spine1-eos" {
		t.Errorf("hostname = %q", cfg.Hostname)
	}
	for _, u := range cfg.Unrecognized {
		t.Errorf("unrecognized: %q", u.Text())
	}
	// EOS "ip access-list NAME" (no "extended") opens an extended ACL.
	acl := cfg.ACLs["VM_FILTER"]
	if acl == nil || len(acl.Lines) != 1 || acl.Lines[0].DstPorts[0].Lo != 80 {
		t.Fatalf("VM_FILTER = %+v", acl)
	}
	// EOS default distances: eBGP 200 (IOS would be 20).
	if cfg.AdminDistances[ir.ProtoBGP] != 200 {
		t.Errorf("eBGP distance = %d, want 200", cfg.AdminDistances[ir.ProtoBGP])
	}
	if cfg.AdminDistances[ir.ProtoStatic] != 1 {
		t.Errorf("static distance = %d", cfg.AdminDistances[ir.ProtoStatic])
	}
	rm := cfg.RouteMaps["POL"]
	if rm == nil || len(rm.Clauses) != 2 {
		t.Fatalf("POL = %+v", rm)
	}
}

// TestJuniperToAristaReplacement exercises the paper's §1 motivation: a
// Juniper router replaced by an Arista one. The translation below has a
// wrong local preference; Campion finds and localizes it.
func TestJuniperToAristaReplacement(t *testing.T) {
	oldJuniper := `system { host-name old-juniper; }
policy-options {
    policy-statement POL {
        term nets {
            from { route-filter 10.9.0.0/16 orlonger; }
            then reject;
        }
        term rest {
            then { local-preference 150; accept; }
        }
    }
}
routing-options {
    static { route 10.1.1.2/31 next-hop 10.2.2.2; }
    autonomous-system 65001;
}
protocols {
    bgp {
        group peers {
            type external;
            peer-as 65002;
            neighbor 10.0.12.2 { export POL; }
        }
    }
}
`
	j, err := juniper.Parse("old.cfg", oldJuniper)
	if err != nil {
		t.Fatal(err)
	}
	newEOS := `hostname new-arista
ip prefix-list NETS permit 10.9.0.0/16 le 32
route-map POL deny 10
 match ip address prefix-list NETS
route-map POL permit 20
 set local-preference 250
ip route 10.1.1.2 255.255.255.254 10.2.2.2
router bgp 65001
 neighbor 10.0.12.2 remote-as 65002
 neighbor 10.0.12.2 route-map POL out
 neighbor 10.0.12.2 send-community
`
	a, err := Parse("new.cfg", newEOS)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.Diff(j, a, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.RouteMapDiffs) != 1 {
		for _, d := range rep.RouteMapDiffs {
			t.Logf("diff: %s: %s vs %s", d.Pair, d.Action1, d.Action2)
		}
		t.Fatalf("route map diffs = %d, want 1 (the wrong local-pref)", len(rep.RouteMapDiffs))
	}
	d := rep.RouteMapDiffs[0]
	if d.Action1 == d.Action2 {
		t.Errorf("actions should differ: %q vs %q", d.Action1, d.Action2)
	}
	// The static route matches (same prefix, next hop, both distance 1 —
	// JunOS preference 5 vs EOS 1 differ though, reported as attributes).
	var staticDiffs int
	for _, sd := range rep.Structural {
		if sd.Component == "static-route" {
			staticDiffs++
		}
	}
	if staticDiffs == 0 {
		t.Log("note: static AD defaults differ (JunOS 5 vs EOS 1), expected to be reported")
	}
	// The impacted space excludes the NETS region (rejected by both).
	if len(d.Localization.Terms) == 0 {
		t.Fatal("missing localization")
	}
	for _, term := range d.Localization.Terms {
		if term.Include.Prefix == netaddr.MustParsePrefix("10.9.0.0/16") && len(term.Exclude) == 0 {
			t.Error("NETS region should not be impacted")
		}
	}
}
