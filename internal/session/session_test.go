package session

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/campion"
	"repro/internal/obs"
	"repro/internal/testnets"
)

// fleetSnapshots generates a small deterministic fleet as raw snapshots.
func fleetSnapshots(n int, seed int64) map[string][]byte {
	members := testnets.Fleet(testnets.FleetParams{
		Devices: n, Templates: 4, MutationRate: 0.2, Seed: seed,
	})
	out := make(map[string][]byte, len(members))
	for _, m := range members {
		out[m.Name] = []byte(m.Text)
	}
	return out
}

// coldResult runs a from-scratch DiffFleet — no cache, no session —
// over the snapshot set: the ground truth the incremental state must
// match byte for byte.
func coldResult(t *testing.T, snaps map[string][]byte) *campion.FleetResult {
	t.Helper()
	names := make([]string, 0, len(snaps))
	for n := range snaps {
		names = append(names, n)
	}
	sort.Strings(names)
	devices := make([]campion.FleetDevice, len(names))
	for i, n := range names {
		text := string(snaps[n])
		name := n
		devices[i] = campion.FleetDevice{
			Name: n,
			Load: func() (*campion.Config, error) { return campion.Parse(name, text) },
		}
	}
	fr, err := campion.DiffFleet(context.Background(), devices, campion.FleetOptions{})
	if err != nil {
		t.Fatalf("cold DiffFleet: %v", err)
	}
	return fr
}

// renderAll serializes every expanded pair of a fleet result — name,
// then the full report text or the error — so two results can be
// compared byte for byte.
func renderAll(t *testing.T, fr *campion.FleetResult) []byte {
	t.Helper()
	var b bytes.Buffer
	fr.Each(func(res campion.BatchResult) bool {
		fmt.Fprintf(&b, "=== %s ===\n", res.Name)
		if res.Err != nil {
			fmt.Fprintf(&b, "error: %v\n", res.Err)
			return true
		}
		if err := campion.Write(&b, res.Report); err != nil {
			t.Fatalf("render %s: %v", res.Name, err)
		}
		return true
	})
	return b.Bytes()
}

// sessionResult grabs the session's published audit state.
func sessionResult(t *testing.T, s *Session) *campion.FleetResult {
	t.Helper()
	s.resultMu.RLock()
	defer s.resultMu.RUnlock()
	if s.result == nil {
		t.Fatal("session has no audit result")
	}
	return s.result
}

func seedSession(t *testing.T, s *Session, snaps map[string][]byte) {
	t.Helper()
	ctx := context.Background()
	for name, raw := range snaps {
		if _, err := s.Ingest(ctx, name, raw, "seed", false); err != nil {
			t.Fatalf("ingest %s: %v", name, err)
		}
	}
	if _, err := s.Audit(ctx); err != nil {
		t.Fatalf("seed audit: %v", err)
	}
}

// edits is a deterministic menu of single-device semantic edits.
func applyEdit(raw []byte, kind int, salt int) []byte {
	text := string(raw)
	switch kind % 3 {
	case 0: // append a unique static route (new semantic class)
		return []byte(text + fmt.Sprintf("ip route 10.77.%d.0 255.255.255.0 10.0.0.254\n", salt%256))
	case 1: // change a local-preference value in place
		return []byte(strings.Replace(text, "set local-preference", "set local-preference 9", 1))
	default: // rewrite a community value
		return []byte(strings.Replace(text, "set community 65000:", "set community 64999:", 1))
	}
}

// TestIncrementalMatchesCold is the correctness pin of the tentpole:
// after any sequence of random single-device edits, the daemon's state
// (device hashes and every expanded pair report) is byte-identical to a
// cold DiffFleet over the same snapshot set.
func TestIncrementalMatchesCold(t *testing.T) {
	snaps := fleetSnapshots(14, 7)
	s := New(Options{})
	seedSession(t, s, snaps)

	names := make([]string, 0, len(snaps))
	for n := range snaps {
		names = append(names, n)
	}
	sort.Strings(names)
	rng := rand.New(rand.NewSource(11))
	ctx := context.Background()

	check := func(step string) {
		got := sessionResult(t, s)
		want := coldResult(t, snaps)
		for i := range want.Devices {
			if got.Devices[i].Hash != want.Devices[i].Hash {
				t.Fatalf("%s: hash mismatch on %s: session %s vs cold %s", step,
					want.Devices[i].Name, got.Devices[i].Hash, want.Devices[i].Hash)
			}
		}
		if g, w := renderAll(t, got), renderAll(t, want); !bytes.Equal(g, w) {
			t.Fatalf("%s: expanded reports differ from cold DiffFleet (%d vs %d bytes)",
				step, len(g), len(w))
		}
	}
	check("seed")

	for step := 0; step < 6; step++ {
		name := names[rng.Intn(len(names))]
		snaps[name] = applyEdit(snaps[name], rng.Intn(3), step)
		res, err := s.Ingest(ctx, name, snaps[name], "push", true)
		if err != nil {
			t.Fatalf("step %d: ingest %s: %v", step, name, err)
		}
		if res.Op != "ingest" {
			t.Fatalf("step %d: op %q, want ingest", step, res.Op)
		}
		if res.Audit == nil {
			t.Fatalf("step %d: no audit ran", step)
		}
		check(fmt.Sprintf("step %d (%s)", step, name))
	}
}

// TestIncrementalRehashOnlyEdited pins the cost shape: a single-device
// edit re-hashes exactly that device (every other hash is a cache hit)
// and re-diffs only class pairs the edit moved.
func TestIncrementalRehashOnlyEdited(t *testing.T) {
	snaps := fleetSnapshots(12, 3)
	journal := obs.NewJournal(nil)
	var hashKinds map[string][]string
	journal.Listen(func(e obs.Event) {
		if e.Type == obs.EvHash {
			hashKinds[e.Kind] = append(hashKinds[e.Kind], e.Device)
		}
	})
	hashKinds = map[string][]string{}
	s := New(Options{Journal: journal})
	seedSession(t, s, snaps)

	hashKinds = map[string][]string{}
	edited := "fleet-0003"
	snaps[edited] = applyEdit(snaps[edited], 0, 42)
	res, err := s.Ingest(context.Background(), edited, snaps[edited], "push", true)
	if err != nil {
		t.Fatal(err)
	}
	if got := hashKinds["dag"]; len(got) != 1 || got[0] != edited {
		t.Fatalf("re-hashed devices = %v, want exactly [%s]", got, edited)
	}
	if len(hashKinds["cached"]) != len(snaps)-1 {
		t.Fatalf("%d cached hashes, want %d", len(hashKinds["cached"]), len(snaps)-1)
	}
	// The edit created a fresh class: only its orientation pairs are
	// recomputed, everything else is served from the report cache.
	if res.Audit.RepComputed == 0 || res.Audit.RepComputed >= res.Audit.RepPairs {
		t.Fatalf("rep pairs computed/needed = %d/%d, want 0 < computed < needed",
			res.Audit.RepComputed, res.Audit.RepPairs)
	}
}

// TestNoopEditZeroRediff: an edit that only touches comments (appended
// trailing "!" lines, so no span shifts) changes the bytes but not the
// semantic hash — the audit must re-diff nothing.
func TestNoopEditZeroRediff(t *testing.T) {
	snaps := fleetSnapshots(10, 5)
	s := New(Options{})
	seedSession(t, s, snaps)

	edited := "fleet-0001"
	snaps[edited] = append(append([]byte(nil), snaps[edited]...),
		[]byte("! reviewed 2026-08-08\n! ticket NET-1234\n")...)
	res, err := s.Ingest(context.Background(), edited, snaps[edited], "push", true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Op != "ingest" {
		t.Fatalf("op %q, want ingest (bytes did change)", res.Op)
	}
	if res.Audit == nil {
		t.Fatal("no audit ran")
	}
	if res.Audit.RepComputed != 0 {
		t.Fatalf("comment-only edit re-diffed %d representative pairs, want 0",
			res.Audit.RepComputed)
	}
	// And byte-identical snapshots are not even ingested.
	res, err = s.Ingest(context.Background(), edited, snaps[edited], "push", true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Op != "noop" || res.Audit != nil {
		t.Fatalf("identical snapshot: op=%q audit=%v, want noop with no audit", res.Op, res.Audit)
	}
}

// TestParseFailureDegradesAndHeals: a snapshot that fails to parse is
// recorded (its pairs expand to parse errors, matching cold DiffFleet)
// and a later good snapshot restores it.
func TestParseFailureDegradesAndHeals(t *testing.T) {
	snaps := fleetSnapshots(6, 9)
	s := New(Options{})
	seedSession(t, s, snaps)
	ctx := context.Background()

	good := append([]byte(nil), snaps["fleet-0002"]...)
	snaps["fleet-0002"] = []byte("%% not a router config %%\n")
	res, err := s.Ingest(ctx, "fleet-0002", snaps["fleet-0002"], "push", true)
	if err != nil {
		t.Fatal(err)
	}
	if res.ParseError == "" {
		t.Fatal("expected a parse error")
	}
	pair, err := s.Report("fleet-0002", "fleet-0003")
	if err != nil {
		t.Fatal(err)
	}
	if pair.Err == nil || campion.ErrKind(pair.Err) != "parse" {
		t.Fatalf("pair error = %v, want a parse failure", pair.Err)
	}
	if g, w := renderAll(t, sessionResult(t, s)), renderAll(t, coldResult(t, snaps)); !bytes.Equal(g, w) {
		t.Fatal("degraded state differs from cold DiffFleet")
	}

	snaps["fleet-0002"] = good
	if _, err := s.Ingest(ctx, "fleet-0002", good, "push", true); err != nil {
		t.Fatal(err)
	}
	pair, err = s.Report("fleet-0002", "fleet-0003")
	if err != nil {
		t.Fatal(err)
	}
	if pair.Err != nil {
		t.Fatalf("healed pair still fails: %v", pair.Err)
	}
}

// TestRemoveAndQueries covers Remove, Report orientation, and the
// sentinel errors the HTTP layer depends on.
func TestRemoveAndQueries(t *testing.T) {
	snaps := fleetSnapshots(5, 13)
	s := New(Options{})
	ctx := context.Background()

	if _, err := s.Report("a", "b"); err != ErrNoAudit {
		t.Fatalf("empty session Report error = %v, want ErrNoAudit", err)
	}
	if _, err := s.Fleet(); err != ErrNoAudit {
		t.Fatalf("empty session Fleet error = %v, want ErrNoAudit", err)
	}
	if _, err := s.Ingest(ctx, "bad name", []byte("x"), "push", true); err == nil {
		t.Fatal("space in device name accepted")
	}

	seedSession(t, s, snaps)
	ab, err := s.Report("fleet-0000", "fleet-0001")
	if err != nil {
		t.Fatal(err)
	}
	ba, err := s.Report("fleet-0001", "fleet-0000")
	if err != nil {
		t.Fatal(err)
	}
	if ab.Name != ba.Name {
		t.Fatalf("orientation not canonical: %q vs %q", ab.Name, ba.Name)
	}
	if _, err := s.Report("fleet-0000", "nope"); err == nil {
		t.Fatal("unknown device accepted")
	}

	res, err := s.Remove(ctx, "fleet-0004", true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Op != "remove" || res.Audit == nil {
		t.Fatalf("remove result %+v", res)
	}
	if _, err := s.Report("fleet-0004", "fleet-0000"); err == nil {
		t.Fatal("removed device still reported")
	}
	sum, err := s.Fleet()
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Devices) != 4 {
		t.Fatalf("%d devices after remove, want 4", len(sum.Devices))
	}
	delete(snaps, "fleet-0004")
	if g, w := renderAll(t, sessionResult(t, s)), renderAll(t, coldResult(t, snaps)); !bytes.Equal(g, w) {
		t.Fatal("post-remove state differs from cold DiffFleet")
	}
}

// TestDiskBackedSessionSurvivesRestart: a session over a disk store can
// be torn down and rebuilt; the second session's seed audit re-diffs
// nothing because hashes and reports persist.
func TestDiskBackedSessionSurvivesRestart(t *testing.T) {
	snaps := fleetSnapshots(8, 21)
	dir := t.TempDir()
	store, err := campion.OpenFleetStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Options{Store: store})
	seedSession(t, s, snaps)
	first := s.LastAudit()
	if first.RepComputed == 0 {
		t.Fatal("cold seed computed nothing; fleet too uniform for the test")
	}

	store2, err := campion.OpenFleetStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(Options{Store: store2})
	seedSession(t, s2, snaps)
	if warm := s2.LastAudit(); warm.RepComputed != 0 {
		t.Fatalf("restarted session re-diffed %d rep pairs, want 0 (persisted cache)", warm.RepComputed)
	}
	if g, w := renderAll(t, sessionResult(t, s2)), renderAll(t, coldResult(t, snaps)); !bytes.Equal(g, w) {
		t.Fatal("restarted session state differs from cold DiffFleet")
	}
}
