package session

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
)

func newTestServer(t *testing.T) (*httptest.Server, *Session, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	sess := New(Options{Metrics: reg})
	srv := &Server{
		Session: sess,
		Obs:     &obs.Server{Registry: reg, Runs: obs.NewRunLog(8)},
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, sess, reg
}

func do(t *testing.T, method, url string, body string) (*http.Response, []byte) {
	t.Helper()
	var req *http.Request
	var err error
	if body == "" {
		req, err = http.NewRequest(method, url, nil)
	} else {
		req, err = http.NewRequest(method, url, strings.NewReader(body))
	}
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1<<20)
	n, _ := resp.Body.Read(buf)
	for n < len(buf) {
		m, err := resp.Body.Read(buf[n:])
		n += m
		if err != nil {
			break
		}
	}
	return resp, buf[:n]
}

// TestServerEndpoints walks the daemon's whole HTTP surface: push,
// no-op push, reports in both orientations, fleet state, snapshot
// round-trip, delete, and the documented error codes.
func TestServerEndpoints(t *testing.T) {
	ts, _, _ := newTestServer(t)
	snaps := fleetSnapshots(4, 17)

	// Before any snapshot: fleet and report are 503, snapshot 404.
	if resp, _ := do(t, "GET", ts.URL+"/fleet", ""); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("empty GET /fleet = %d, want 503", resp.StatusCode)
	}
	if resp, _ := do(t, "GET", ts.URL+"/report/a/b", ""); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("empty GET /report = %d, want 503", resp.StatusCode)
	}
	if resp, _ := do(t, "GET", ts.URL+"/snapshot/a", ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET missing snapshot = %d, want 404", resp.StatusCode)
	}
	if resp, _ := do(t, "GET", ts.URL+"/healthz", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz = %d, want 200", resp.StatusCode)
	}

	// Push every device; each returns the ingest result.
	for name, raw := range snaps {
		resp, body := do(t, "POST", ts.URL+"/snapshot/"+name, string(raw))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /snapshot/%s = %d: %s", name, resp.StatusCode, body)
		}
		var res IngestResult
		if err := json.Unmarshal(body, &res); err != nil {
			t.Fatalf("ingest response: %v", err)
		}
		if res.Op != "ingest" || res.Audit == nil {
			t.Fatalf("ingest response %+v", res)
		}
	}

	// Empty body is a 400; an unparseable config is a 422 but recorded.
	if resp, _ := do(t, "POST", ts.URL+"/snapshot/fleet-0000", ""); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty POST = %d, want 400", resp.StatusCode)
	}
	resp, body := do(t, "POST", ts.URL+"/snapshot/broken", "%% nonsense %%\n")
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("garbage POST = %d: %s", resp.StatusCode, body)
	}
	// The broken device's pairs are parse errors: 422 from /report.
	if resp, _ = do(t, "GET", ts.URL+"/report/broken/fleet-0000", ""); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("GET /report with failed device = %d, want 422", resp.StatusCode)
	}
	if resp, _ = do(t, "DELETE", ts.URL+"/snapshot/broken", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE = %d, want 200", resp.StatusCode)
	}

	// Identical re-push is a no-op.
	resp, body = do(t, "POST", ts.URL+"/snapshot/fleet-0000", string(snaps["fleet-0000"]))
	var res IngestResult
	json.Unmarshal(body, &res)
	if resp.StatusCode != http.StatusOK || res.Op != "noop" {
		t.Fatalf("identical push: %d %+v", resp.StatusCode, res)
	}

	// Reports: both orientations name the same canonical pair.
	_, ab := do(t, "GET", ts.URL+"/report/fleet-0000/fleet-0001", "")
	_, ba := do(t, "GET", ts.URL+"/report/fleet-0001/fleet-0000", "")
	var pab, pba pairPayload
	json.Unmarshal(ab, &pab)
	json.Unmarshal(ba, &pba)
	if pab.Name == "" || pab.Name != pba.Name {
		t.Fatalf("orientation: %q vs %q", pab.Name, pba.Name)
	}
	if resp, _ = do(t, "GET", ts.URL+"/report/fleet-0000/fleet-0000", ""); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("self pair = %d, want 400", resp.StatusCode)
	}
	if resp, _ = do(t, "GET", ts.URL+"/report/fleet-0000/ghost", ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown device = %d, want 404", resp.StatusCode)
	}

	// Fleet state: all four devices, classes non-empty.
	_, body = do(t, "GET", ts.URL+"/fleet", "")
	var sum FleetSummary
	if err := json.Unmarshal(body, &sum); err != nil {
		t.Fatalf("fleet JSON: %v", err)
	}
	if len(sum.Devices) != 4 || len(sum.Classes) == 0 {
		t.Fatalf("fleet summary %+v", sum)
	}

	// Snapshot round-trip.
	_, body = do(t, "GET", ts.URL+"/snapshot/fleet-0002", "")
	if string(body) != string(snaps["fleet-0002"]) {
		t.Fatal("snapshot round-trip mismatch")
	}

	// Observability endpoints ride the same mux, and the session
	// instruments are visible.
	resp, body = do(t, "GET", ts.URL+"/metrics", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	for _, metric := range []string{
		"campion_session_snapshots_total",
		"campion_session_devices",
		"campion_session_rediff_ratio_percent",
		"campion_session_rep_computed_total",
	} {
		if !strings.Contains(string(body), metric) {
			t.Errorf("/metrics missing %s", metric)
		}
	}
	if resp, _ = do(t, "GET", ts.URL+"/runs", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /runs = %d", resp.StatusCode)
	}
	if resp, _ = do(t, "GET", ts.URL+"/", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET / = %d", resp.StatusCode)
	}
}

// TestServerBodyLimit: oversized snapshots are rejected with 413.
func TestServerBodyLimit(t *testing.T) {
	reg := obs.NewRegistry()
	srv := &Server{Session: New(Options{Metrics: reg}), MaxBody: 64}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, _ := do(t, "POST", ts.URL+"/snapshot/r1", strings.Repeat("x", 1024))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized POST = %d, want 413", resp.StatusCode)
	}
}
