package session

import (
	"reflect"
	"strings"
	"testing"

	"repro/campion"
)

func TestChangedRange(t *testing.T) {
	cases := []struct {
		name     string
		old, new string
		oldR     lineRange
		newR     lineRange
	}{
		{"identical", "a\nb\nc", "a\nb\nc", lineRange{}, lineRange{}},
		{"rewrite middle", "a\nb\nc", "a\nX\nc", lineRange{2, 2}, lineRange{2, 2}},
		{"insert", "a\nc", "a\nb\nc", lineRange{}, lineRange{2, 2}},
		{"delete", "a\nb\nc", "a\nc", lineRange{2, 2}, lineRange{}},
		{"append", "a\nb", "a\nb\nc\nd", lineRange{}, lineRange{3, 4}},
		{"truncate", "a\nb\nc", "a", lineRange{2, 3}, lineRange{}},
		{"replace all", "a\nb", "x\ny\nz", lineRange{1, 2}, lineRange{1, 3}},
		{"empty to full", "", "a\nb", lineRange{}, lineRange{1, 2}},
	}
	for _, c := range cases {
		oldR, newR := changedRange(splitLines([]byte(c.old)), splitLines([]byte(c.new)))
		if oldR != c.oldR || newR != c.newR {
			t.Errorf("%s: changedRange = %+v/%+v, want %+v/%+v",
				c.name, oldR, newR, c.oldR, c.newR)
		}
	}
}

const dirtyBase = `hostname r1
ip prefix-list NETS permit 10.1.0.0/16 le 24
ip prefix-list OTHER permit 10.9.0.0/16
ip community-list standard BLOCK permit 65000:100
route-map IMPORT deny 10
 match community BLOCK
route-map IMPORT permit 20
 match ip address NETS
 set local-preference 150
route-map UNRELATED permit 10
 match ip address OTHER
router bgp 65001
 neighbor 10.0.0.1 remote-as 65002
 neighbor 10.0.0.1 route-map IMPORT in
`

// TestDirtyChainClosure: an edit inside a prefix list dirties the list,
// every route map matching it, and the BGP session applying that map —
// but not unrelated components.
func TestDirtyChainClosure(t *testing.T) {
	edited := strings.Replace(dirtyBase,
		"ip prefix-list NETS permit 10.1.0.0/16 le 24",
		"ip prefix-list NETS permit 10.2.0.0/16 le 24", 1)
	oldCfg, err := campion.Parse("r1.cfg", dirtyBase)
	if err != nil {
		t.Fatal(err)
	}
	newCfg, err := campion.Parse("r1.cfg", edited)
	if err != nil {
		t.Fatal(err)
	}
	oldR, newR := changedRange(splitLines([]byte(dirtyBase)), splitLines([]byte(edited)))
	dirty := dirtyComponents(oldCfg, newCfg, oldR, newR)

	want := map[string]bool{
		"prefix-list NETS":        true, // the edit itself
		"route-map IMPORT":        true, // matches NETS
		"bgp neighbor 10.0.0.1":   true, // applies IMPORT
		"route-map UNRELATED":     false,
		"prefix-list OTHER":       false,
		"community-list BLOCK":    false,
		"bgp process":             false,
		"interface <nonexistent>": false,
	}
	got := map[string]bool{}
	for _, id := range dirty {
		got[id] = true
	}
	for id, expect := range want {
		if got[id] != expect {
			t.Errorf("dirty[%s] = %v, want %v (full set: %v)", id, got[id], expect, dirty)
		}
	}
}

// TestDirtyCommunityDelete: a community list named by a route map's
// "set comm-list delete" is a semantic dependency too.
func TestDirtyCommunityDelete(t *testing.T) {
	base := `hostname r2
ip community-list standard SCRUB permit 65000:999
route-map OUT permit 10
 set comm-list SCRUB delete
`
	edited := strings.Replace(base, "65000:999", "65000:998", 1)
	oldCfg, _ := campion.Parse("r2.cfg", base)
	newCfg, _ := campion.Parse("r2.cfg", edited)
	oldR, newR := changedRange(splitLines([]byte(base)), splitLines([]byte(edited)))
	dirty := dirtyComponents(oldCfg, newCfg, oldR, newR)
	want := []string{"community-list SCRUB", "route-map OUT"}
	if !reflect.DeepEqual(dirty, want) {
		t.Fatalf("dirty = %v, want %v", dirty, want)
	}
}

// TestDirtyInterfaceACL: editing an ACL dirties the interfaces that
// apply it.
func TestDirtyInterfaceACL(t *testing.T) {
	base := `hostname r3
ip access-list extended EDGE
 10 permit tcp any any eq 179
 20 deny ip any any
interface GigabitEthernet0/0
 ip address 10.0.0.1 255.255.255.0
 ip access-group EDGE in
interface GigabitEthernet0/1
 ip address 10.0.1.1 255.255.255.0
`
	edited := strings.Replace(base, "eq 179", "eq 180", 1)
	oldCfg, _ := campion.Parse("r3.cfg", base)
	newCfg, _ := campion.Parse("r3.cfg", edited)
	oldR, newR := changedRange(splitLines([]byte(base)), splitLines([]byte(edited)))
	got := map[string]bool{}
	for _, id := range dirtyComponents(oldCfg, newCfg, oldR, newR) {
		got[id] = true
	}
	if !got["acl EDGE"] || !got["interface GigabitEthernet0/0"] {
		t.Fatalf("dirty set missing the ACL or its interface: %v", got)
	}
	if got["interface GigabitEthernet0/1"] {
		t.Fatalf("interface without the ACL marked dirty: %v", got)
	}
}

// TestAllComponentsNonEmpty: the first snapshot's blast radius is the
// whole configuration.
func TestAllComponentsNonEmpty(t *testing.T) {
	cfg, err := campion.Parse("r1.cfg", dirtyBase)
	if err != nil {
		t.Fatal(err)
	}
	all := allComponents(cfg)
	if len(all) < 6 {
		t.Fatalf("allComponents = %v, want at least the lists, maps, and BGP units", all)
	}
	if len(allComponents(nil)) != 0 {
		t.Fatal("nil config should have no components")
	}
}
