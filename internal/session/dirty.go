// Dirty-component tracking: given the previous and the incoming raw
// configuration of one device, find the changed line range (common
// prefix/suffix trim), overlay it on the component text spans of both
// parses, and close the result over the reference graph (route maps pull
// in the prefix/community/as-path lists they name; interfaces pull in
// their ACLs; BGP and OSPF pull in the route maps their sessions and
// redistributions apply). The closure is the set of components whose
// compiled semantics the edit *can* have touched — exactly the vocab-
// fingerprint dependency structure the PolicyCache keys on.
//
// The tracker is observational: correctness of the incremental audit
// never depends on it (the audit re-hashes the edited device and lets
// the content-addressed caches prove everything else unchanged). Its
// job is telemetry — the campion_session_dirty_components metric, the
// snapshot journal events, and the operator's answer to "what did that
// push actually touch?".
package session

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ir"
)

// lineRange is a 1-based inclusive line interval; zero means empty.
type lineRange struct {
	Start, End int
}

func (r lineRange) empty() bool { return r.Start == 0 }

func (r lineRange) String() string {
	if r.empty() {
		return ""
	}
	if r.Start == r.End {
		return fmt.Sprintf("%d", r.Start)
	}
	return fmt.Sprintf("%d-%d", r.Start, r.End)
}

// overlaps reports whether the range intersects span [start, end].
func (r lineRange) overlaps(start, end int) bool {
	return !r.empty() && start != 0 && r.Start <= end && start <= r.End
}

// changedRange trims the common prefix and suffix of the two line slices
// and returns the leftover window in each: oldR covers the removed or
// rewritten lines of the previous snapshot, newR the inserted or
// rewritten lines of the incoming one. Both empty means byte-identical
// content (modulo the split); one side empty means a pure insertion or
// deletion at that position.
func changedRange(oldLines, newLines []string) (oldR, newR lineRange) {
	pre := 0
	for pre < len(oldLines) && pre < len(newLines) && oldLines[pre] == newLines[pre] {
		pre++
	}
	suf := 0
	for suf < len(oldLines)-pre && suf < len(newLines)-pre &&
		oldLines[len(oldLines)-1-suf] == newLines[len(newLines)-1-suf] {
		suf++
	}
	if pre < len(oldLines)-suf {
		oldR = lineRange{pre + 1, len(oldLines) - suf}
	}
	if pre < len(newLines)-suf {
		newR = lineRange{pre + 1, len(newLines) - suf}
	}
	return oldR, newR
}

// splitLines splits raw configuration bytes into lines, tolerating CRLF
// and a missing trailing newline (the same text either parser would see).
func splitLines(raw []byte) []string {
	s := strings.ReplaceAll(string(raw), "\r\n", "\n")
	s = strings.TrimSuffix(s, "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

// component is one span-bearing unit of a configuration, named by
// "kind name" ("route-map LOCAL_PREF", "bgp neighbor 10.0.0.1", ...).
type component struct {
	id         string
	start, end int
	// refs are the "kind name" ids of components this one names — the
	// edges the dirty closure follows (referrer becomes dirty when a
	// referee is).
	refs []string
}

func listRefs(kind string, names ...string) []string {
	out := make([]string, 0, len(names))
	for _, n := range names {
		if n != "" {
			out = append(out, kind+" "+n)
		}
	}
	return out
}

// components enumerates every span-bearing unit of cfg with its
// reference edges. Order is deterministic (sorted ids) but callers
// treat the result as a set.
func components(cfg *ir.Config) []component {
	if cfg == nil {
		return nil
	}
	var out []component
	add := func(id string, span ir.TextSpan, refs ...string) {
		out = append(out, component{id: id, start: span.StartLine, end: span.EndLine, refs: refs})
	}
	for name, l := range cfg.PrefixLists {
		add("prefix-list "+name, l.Span)
	}
	for name, l := range cfg.CommunityLists {
		add("community-list "+name, l.Span)
	}
	for name, l := range cfg.ASPathLists {
		add("as-path-list "+name, l.Span)
	}
	for name, a := range cfg.ACLs {
		add("acl "+name, a.Span)
	}
	for name, rm := range cfg.RouteMaps {
		var refs []string
		for _, cl := range rm.Clauses {
			for _, m := range cl.Matches {
				switch m := m.(type) {
				case ir.MatchPrefixList:
					refs = append(refs, listRefs("prefix-list", m.Lists...)...)
				case ir.MatchPrefixListFilter:
					refs = append(refs, listRefs("prefix-list", m.List)...)
				case ir.MatchNextHop:
					refs = append(refs, listRefs("prefix-list", m.Lists...)...)
				case ir.MatchCommunity:
					refs = append(refs, listRefs("community-list", m.Lists...)...)
				case ir.MatchASPath:
					refs = append(refs, listRefs("as-path-list", m.Lists...)...)
				}
			}
			for _, s := range cl.Sets {
				if d, ok := s.(ir.DeleteCommunity); ok {
					refs = append(refs, listRefs("community-list", d.List)...)
				}
			}
		}
		add("route-map "+name, rm.Span, refs...)
	}
	for _, i := range cfg.Interfaces {
		add("interface "+i.Name, i.Span, listRefs("acl", i.ACLIn, i.ACLOut)...)
	}
	for n, r := range cfg.StaticRoutes {
		add(fmt.Sprintf("static-route %s #%d", r.Prefix, n), r.Span)
	}
	if b := cfg.BGP; b != nil {
		var refs []string
		for _, addr := range b.NeighborAddrs() {
			nb := b.Neighbors[addr]
			nrefs := listRefs("route-map", append(append([]string{}, nb.ImportPolicies...), nb.ExportPolicies...)...)
			add("bgp neighbor "+addr, nb.Span, nrefs...)
		}
		for _, rd := range b.Redistribute {
			refs = append(refs, listRefs("route-map", rd.RouteMap)...)
		}
		add("bgp process", b.Span, refs...)
	}
	if o := cfg.OSPF; o != nil {
		var refs []string
		for _, name := range o.InterfaceNames() {
			add("ospf interface "+name, o.Interfaces[name].Span)
		}
		for _, rd := range o.Redistribute {
			refs = append(refs, listRefs("route-map", rd.RouteMap)...)
		}
		add("ospf process", o.Span, refs...)
	}
	for n, u := range cfg.Unrecognized {
		add(fmt.Sprintf("unrecognized #%d", n), u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// dirtyComponents is the edit's blast radius: every component of either
// parse whose span overlaps its side's changed range, closed transitively
// over the reference edges of the *new* parse (an edit inside prefix-list
// P dirties every route map matching P, and through them the BGP sessions
// applying those maps — the chain whose vocab fingerprint the edit can
// shift). Returns sorted unique ids.
func dirtyComponents(oldCfg, newCfg *ir.Config, oldR, newR lineRange) []string {
	dirty := map[string]bool{}
	for _, c := range components(oldCfg) {
		if oldR.overlaps(c.start, c.end) {
			dirty[c.id] = true
		}
	}
	newComps := components(newCfg)
	for _, c := range newComps {
		if newR.overlaps(c.start, c.end) {
			dirty[c.id] = true
		}
	}
	// Close over referrers: iterate to a fixpoint (chains are shallow —
	// list → route map → session — so this settles in 2–3 passes).
	for changed := true; changed; {
		changed = false
		for _, c := range newComps {
			if dirty[c.id] {
				continue
			}
			for _, ref := range c.refs {
				if dirty[ref] {
					dirty[c.id] = true
					changed = true
					break
				}
			}
		}
	}
	out := make([]string, 0, len(dirty))
	for id := range dirty {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// allComponents names every component of cfg — the blast radius of a
// device's first snapshot, where there is no previous parse to diff
// against.
func allComponents(cfg *ir.Config) []string {
	comps := components(cfg)
	out := make([]string, 0, len(comps))
	for _, c := range comps {
		out = append(out, c.id)
	}
	return out
}
