package session

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/testnets"
)

// TestWatcherSweep drives the directory poller by hand: seed sweep,
// steady-state no-op sweep, an edit, and a removal — each sweep costing
// at most one audit.
func TestWatcherSweep(t *testing.T) {
	dir := t.TempDir()
	members := testnets.Fleet(testnets.FleetParams{Devices: 6, Templates: 3, MutationRate: 0.3, Seed: 29})
	if err := testnets.WriteFleetDir(dir, members); err != nil {
		t.Fatal(err)
	}

	s := New(Options{})
	w := &Watcher{Session: s, Dir: dir}
	ctx := context.Background()

	changed, st := w.Sweep(ctx, "seed")
	if len(changed) != 6 {
		t.Fatalf("seed sweep ingested %d devices, want 6", len(changed))
	}
	if st.Devices != 6 {
		t.Fatalf("seed audit over %d devices, want 6", st.Devices)
	}
	// Nothing changed: the sweep is free (no audit, AuditStats zero).
	if changed, st = w.Sweep(ctx, "watch"); changed != nil || st.Devices != 0 {
		t.Fatalf("idle sweep reported changes: %v %+v", changed, st)
	}

	// Edit one file: exactly one ingest, one audit.
	name := members[1].Name
	edited := members[1].Text + "ip route 10.88.0.0 255.255.255.0 10.0.0.254\n"
	if err := os.WriteFile(filepath.Join(dir, name+".cfg"), []byte(edited), 0o644); err != nil {
		t.Fatal(err)
	}
	changed, st = w.Sweep(ctx, "watch")
	if len(changed) != 1 || changed[0].Device != name || changed[0].Op != "ingest" {
		t.Fatalf("edit sweep: %+v", changed)
	}
	if st.Devices != 6 || st.RepComputed == 0 {
		t.Fatalf("edit sweep audit: %+v", st)
	}

	// Remove a file: the device leaves the session.
	if err := os.Remove(filepath.Join(dir, members[2].Name+".cfg")); err != nil {
		t.Fatal(err)
	}
	changed, st = w.Sweep(ctx, "watch")
	if len(changed) != 1 || changed[0].Op != "remove" {
		t.Fatalf("remove sweep: %+v", changed)
	}
	if st.Devices != 5 {
		t.Fatalf("post-remove audit over %d devices, want 5", st.Devices)
	}
	for _, n := range s.Devices() {
		if n == members[2].Name {
			t.Fatal("removed device still present")
		}
	}
}
