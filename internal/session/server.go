package session

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/campion"
	"repro/internal/obs"
)

// Server is the daemon's HTTP surface over a Session: snapshot ingest,
// report and fleet queries, and (when Obs is set) the observability
// endpoints, all on one mux. Construct it, then serve Handler().
type Server struct {
	Session *Session
	// Obs, when non-nil, mounts /metrics, /runs, and /debug/pprof/ from
	// the observability server onto the same mux.
	Obs *obs.Server
	// MaxBody bounds snapshot request bodies in bytes; 0 means the
	// 8 MiB default (a router config is tens of kilobytes).
	MaxBody int64
}

// Handler returns the daemon's route mux.
//
//	GET    /healthz             liveness probe
//	POST   /snapshot/{device}   ingest a snapshot (body: raw config)
//	PUT    /snapshot/{device}   alias for POST
//	GET    /snapshot/{device}   current raw snapshot
//	DELETE /snapshot/{device}   drop the device and re-audit
//	GET    /fleet               audited fleet state (JSON)
//	GET    /report/{a}/{b}      expanded pair report (JSON)
//
// See README.md's operations guide for the status codes each endpoint
// returns; scripts/serve_smoke.sh exercises them against this handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("POST /snapshot/{device}", s.ingest)
	mux.HandleFunc("PUT /snapshot/{device}", s.ingest)
	mux.HandleFunc("GET /snapshot/{device}", s.getSnapshot)
	mux.HandleFunc("DELETE /snapshot/{device}", s.remove)
	mux.HandleFunc("GET /fleet", s.fleet)
	mux.HandleFunc("GET /report/{a}/{b}", s.report)
	if s.Obs != nil {
		oh := s.Obs.Handler()
		mux.Handle("GET /metrics", oh)
		mux.Handle("GET /runs", oh)
		mux.Handle("GET /debug/pprof/", oh)
	}
	mux.HandleFunc("GET /{$}", s.index)
	return mux
}

// errStatus maps session sentinels onto HTTP status codes.
func errStatus(err error) int {
	switch {
	case errors.Is(err, ErrBadName):
		return http.StatusBadRequest
	case errors.Is(err, ErrUnknownDevice):
		return http.StatusNotFound
	case errors.Is(err, ErrNoAudit):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) ingest(w http.ResponseWriter, r *http.Request) {
	max := s.MaxBody
	if max <= 0 {
		max = 8 << 20
	}
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, max))
	if err != nil {
		writeErr(w, http.StatusRequestEntityTooLarge, err)
		return
	}
	if len(raw) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("empty snapshot body"))
		return
	}
	res, err := s.Session.Ingest(r.Context(), r.PathValue("device"), raw, "push", true)
	if err != nil {
		writeErr(w, errStatus(err), err)
		return
	}
	// A snapshot that failed to parse is recorded (its pairs degrade to
	// parse errors) but flagged: 422 tells the pusher the config itself
	// is the problem, not the request.
	if res.ParseError != "" {
		writeJSON(w, http.StatusUnprocessableEntity, res)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) getSnapshot(w http.ResponseWriter, r *http.Request) {
	raw, ok := s.Session.Snapshot(r.PathValue("device"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("%w: %q", ErrUnknownDevice, r.PathValue("device")))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(raw)
}

func (s *Server) remove(w http.ResponseWriter, r *http.Request) {
	res, err := s.Session.Remove(r.Context(), r.PathValue("device"), true)
	if err != nil {
		writeErr(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) fleet(w http.ResponseWriter, _ *http.Request) {
	sum, err := s.Session.Fleet()
	if err != nil {
		writeErr(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, sum)
}

// pairPayload is the GET /report/{a}/{b} body: the pair name, either
// the localized report or the pair's structured error, and the
// difference count for quick triage.
type pairPayload struct {
	Name    string          `json:"name"`
	Diffs   int             `json:"diffs"`
	Report  json.RawMessage `json:"report,omitempty"`
	Error   string          `json:"error,omitempty"`
	ErrKind string          `json:"err_kind,omitempty"`
}

func (s *Server) report(w http.ResponseWriter, r *http.Request) {
	a, b := r.PathValue("a"), r.PathValue("b")
	res, err := s.Session.Report(a, b)
	if err != nil {
		writeErr(w, errStatus(err), err)
		return
	}
	payload := pairPayload{Name: res.Name}
	if res.Err != nil {
		// The pair itself failed (a device that never parsed, a budget
		// abort): that is state, not a bad request — 422 with the
		// structured error.
		payload.Error = res.Err.Error()
		payload.ErrKind = campion.ErrKind(res.Err)
		writeJSON(w, http.StatusUnprocessableEntity, payload)
		return
	}
	payload.Diffs = res.Report.TotalDifferences()
	body, jerr := campion.JSON(res.Report)
	if jerr != nil {
		writeErr(w, http.StatusInternalServerError, jerr)
		return
	}
	payload.Report = body
	writeJSON(w, http.StatusOK, payload)
}

func (s *Server) index(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	io.WriteString(w, `<html><head><title>campion daemon</title></head><body>
<h1>campion daemon</h1>
<ul>
<li>POST /snapshot/{device} — push a configuration snapshot</li>
<li>GET /snapshot/{device} — current raw snapshot</li>
<li>DELETE /snapshot/{device} — drop a device</li>
<li><a href="/fleet">/fleet</a> — audited fleet state (JSON)</li>
<li>GET /report/{a}/{b} — expanded pair report (JSON)</li>
<li><a href="/metrics">/metrics</a> — Prometheus exposition</li>
<li><a href="/runs">/runs</a> — recent runs (JSON)</li>
<li><a href="/debug/pprof/">/debug/pprof/</a> — Go runtime profiles</li>
<li><a href="/healthz">/healthz</a> — liveness</li>
</ul>
</body></html>
`)
}
