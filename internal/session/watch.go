package session

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// Watcher polls a directory of configuration files into a Session: one
// device per regular file (named after the file, extension stripped —
// the same convention as `campion -all DIR`). Each sweep ingests every
// file whose bytes changed, removes devices whose files vanished, and
// runs a single audit covering the whole sweep, so a config-management
// push that rewrites ten files costs one re-audit, not ten.
type Watcher struct {
	Session  *Session
	Dir      string
	Interval time.Duration // default 2s
	// OnSweep, when set, observes each sweep that changed something:
	// the ingest results (including removes) and the audit stats.
	OnSweep func([]IngestResult, AuditStats)
}

// Run seeds the session from the directory, then polls until ctx is
// done. The first sweep's snapshots are journaled with kind "seed",
// later ones with kind "watch". Unreadable files (and an unreadable
// directory) are skipped for the sweep — transient editor states heal
// on the next tick. Returns ctx.Err().
func (w *Watcher) Run(ctx context.Context) error {
	interval := w.Interval
	if interval <= 0 {
		interval = 2 * time.Second
	}
	w.Sweep(ctx, "seed")
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
			w.Sweep(ctx, "watch")
		}
	}
}

// Sweep scans the directory once: ingest changed files (audit deferred),
// remove vanished devices, then audit once if anything moved. kind
// labels the journal events. Returns what changed; both nil/zero when
// the sweep found nothing new.
func (w *Watcher) Sweep(ctx context.Context, kind string) ([]IngestResult, AuditStats) {
	entries, err := os.ReadDir(w.Dir)
	if err != nil {
		return nil, AuditStats{}
	}
	seen := map[string]bool{}
	var changed []IngestResult
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := strings.TrimSuffix(e.Name(), filepath.Ext(e.Name()))
		if checkName(name) != nil {
			continue
		}
		data, err := os.ReadFile(filepath.Join(w.Dir, e.Name()))
		if err != nil {
			continue
		}
		seen[name] = true
		res, err := w.Session.Ingest(ctx, name, data, kind, false)
		if err != nil {
			continue
		}
		if res.Op == "ingest" {
			changed = append(changed, res)
		}
	}
	for _, name := range w.Session.Devices() {
		if !seen[name] {
			if res, err := w.Session.Remove(ctx, name, false); err == nil {
				changed = append(changed, res)
			}
		}
	}
	if len(changed) == 0 {
		return nil, AuditStats{}
	}
	st, err := w.Session.Audit(ctx)
	if err != nil {
		return changed, AuditStats{}
	}
	if w.OnSweep != nil {
		w.OnSweep(changed, st)
	}
	return changed, st
}
