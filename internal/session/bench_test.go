package session

import (
	"context"
	"sort"
	"testing"

	"repro/campion"
	"repro/internal/testnets"
)

// The daemon's acceptance benchmark: after a single-device edit on a
// 200-device fleet, the incremental path (push to a warm session) must
// beat the best batch alternative (re-running DiffFleet over a warm
// disk cache) by an order of magnitude. Both benchmarks process the
// same toggling edit in steady state — every hash and report either
// path needs is already cached — so the measured gap is pure
// architecture: one parse + one memo-served audit versus a full
// cache-backed fleet pass.

const benchDevices = 200

func benchSnapshots() (map[string][]byte, []string) {
	members := testnets.Fleet(testnets.FleetParams{
		Devices: benchDevices, Templates: 4, MutationRate: 0.2, Seed: 31,
	})
	snaps := make(map[string][]byte, len(members))
	names := make([]string, 0, len(members))
	for _, m := range members {
		snaps[m.Name] = []byte(m.Text)
		names = append(names, m.Name)
	}
	sort.Strings(names)
	return snaps, names
}

// BenchmarkSessionIncremental: steady-state daemon cost of one
// single-device edit (ingest + incremental audit) on a warm session.
// The device toggles between two variants whose hashes and reports are
// both already cached, so per-iteration work is the parse and re-hash
// of the edited device plus a memo-served DiffFleet.
func BenchmarkSessionIncremental(b *testing.B) {
	snaps, names := benchSnapshots()
	ctx := context.Background()
	s := New(Options{})
	for name, raw := range snaps {
		if _, err := s.Ingest(ctx, name, raw, "seed", false); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := s.Audit(ctx); err != nil {
		b.Fatal(err)
	}

	name := names[len(names)/2]
	varA := snaps[name]
	varB := applyEdit(varA, 0, 1)
	// Warm both variants so the timed loop measures steady state.
	for _, raw := range [][]byte{varB, varA} {
		if _, err := s.Ingest(ctx, name, raw, "push", true); err != nil {
			b.Fatal(err)
		}
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw := varA
		if i%2 == 0 {
			raw = varB
		}
		res, err := s.Ingest(ctx, name, raw, "push", true)
		if err != nil {
			b.Fatal(err)
		}
		if res.Op != "ingest" || res.Audit == nil {
			b.Fatalf("iteration %d: %+v", i, res)
		}
	}
}

// BenchmarkSessionColdWarmCache: the batch alternative to the daemon —
// after the same single-device edit, re-run `campion -all -cache-dir`
// from scratch. The disk cache is fully warm for both variants, so no
// pair is re-diffed; the cost is opening a fresh store and pulling 200
// hash entries plus every representative report back off disk.
func BenchmarkSessionColdWarmCache(b *testing.B) {
	snaps, names := benchSnapshots()
	ctx := context.Background()
	dir := b.TempDir()

	name := names[len(names)/2]
	varA := snaps[name]
	varB := applyEdit(varA, 0, 1)

	devices := func(edited []byte) []campion.FleetDevice {
		out := make([]campion.FleetDevice, len(names))
		for i, n := range names {
			raw := snaps[n]
			if n == name {
				raw = edited
			}
			text, fname := string(raw), n
			out[i] = campion.FleetDevice{
				Name:       n,
				ContentSum: campion.ContentSum(raw),
				Load:       func() (*campion.Config, error) { return campion.Parse(fname, text) },
			}
		}
		return out
	}
	// Warm the disk cache for both variants.
	for _, raw := range [][]byte{varA, varB} {
		store, err := campion.OpenFleetStore(dir)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := campion.DiffFleet(ctx, devices(raw), campion.FleetOptions{Store: store}); err != nil {
			b.Fatal(err)
		}
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw := varA
		if i%2 == 0 {
			raw = varB
		}
		store, err := campion.OpenFleetStore(dir)
		if err != nil {
			b.Fatal(err)
		}
		fr, err := campion.DiffFleet(ctx, devices(raw), campion.FleetOptions{Store: store})
		if err != nil {
			b.Fatal(err)
		}
		// The comparison is only fair if the cache really is warm: a
		// recomputed pair here would mean we timed real diffing, not
		// the cache-backed fleet pass the daemon replaces.
		if fr.Stats.RepComputed != 0 {
			b.Fatalf("iteration %d: warm run recomputed %d rep pairs", i, fr.Stats.RepComputed)
		}
	}
}

// BenchmarkWatcherIdleSweep: the steady-state cost of one -watch poll
// over an unchanged 200-device directory — a ReadDir plus one content
// sum per file, no parse, no audit.
func BenchmarkWatcherIdleSweep(b *testing.B) {
	dir := b.TempDir()
	members := testnets.Fleet(testnets.FleetParams{
		Devices: benchDevices, Templates: 4, MutationRate: 0.2, Seed: 31,
	})
	if err := testnets.WriteFleetDir(dir, members); err != nil {
		b.Fatal(err)
	}
	s := New(Options{})
	w := &Watcher{Session: s, Dir: dir}
	ctx := context.Background()
	if changed, _ := w.Sweep(ctx, "seed"); len(changed) != benchDevices {
		b.Fatalf("seed sweep ingested %d devices", len(changed))
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if changed, _ := w.Sweep(ctx, "watch"); changed != nil {
			b.Fatalf("idle sweep reported changes: %v", changed)
		}
	}
}
