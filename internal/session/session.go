// Package session is the state layer behind `campion serve`: a
// long-lived fleet whose device configurations arrive one snapshot at a
// time (HTTP pushes or a directory watcher) and whose audit state is
// kept continuously consistent at the cost of the *edit*, not the fleet.
//
// The incremental contract is deliberately indirect. A snapshot does
// not patch the previous audit; every ingest re-runs campion.DiffFleet
// over the full device set. What makes that cheap — and what makes the
// result byte-identical to a cold audit by construction — is that the
// session pins all the pipeline's content-addressed caches warm across
// runs: the raw-bytes→semantic-hash store entry proves every unedited
// device unchanged without parsing it, the (hashA, hashB, options)
// report store serves every class pair whose membership the edit did
// not move, and the in-memory write-through memo (fleet.Store) makes
// both lookups pointer-chases instead of disk reads. The only real work
// left is proportional to the edit: one parse, one device hash, and a
// representative re-diff per class pair the edit actually changed.
//
// Dirty-component tracking (dirty.go) runs alongside as telemetry: the
// changed line range of each snapshot is mapped onto component spans
// and closed over the reference graph, so journals and metrics can say
// *what* an edit touched — but no correctness decision rides on it.
package session

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/campion"
	"repro/internal/obs"
)

// Sentinel errors the HTTP layer maps onto status codes.
var (
	// ErrUnknownDevice: the named device has no snapshot in the session.
	ErrUnknownDevice = errors.New("unknown device")
	// ErrNoAudit: no snapshot has been ingested yet, so there is no
	// fleet state to query.
	ErrNoAudit = errors.New("no audit has run yet")
	// ErrBadName: the device name is empty or contains path separators.
	ErrBadName = errors.New("invalid device name")
)

// Options configures a Session.
type Options struct {
	// Diff carries the comparison and batch options every audit runs
	// under (workers, reorder, GC, budgets, journal, metrics, run log).
	Diff campion.BatchOptions
	// Store is the hash/report cache shared by all audits. Leave nil for
	// a process-local in-memory store; pass an OpenFleetStore with
	// EnableMemo for cross-restart persistence that still serves hot
	// lookups from memory.
	Store *campion.FleetStore
	// Journal, when set, receives the session's snapshot/audit events
	// (and is threaded into Diff.Journal when that is unset, so one
	// file records the whole story).
	Journal *obs.Journal
	// Metrics receives the campion_session_* instruments; nil means the
	// process default registry (what -serve exposes).
	Metrics *obs.Registry
	// Vendor forces a configuration dialect for every snapshot;
	// VendorUnknown (the default) auto-detects per snapshot.
	Vendor campion.Vendor
}

// device is one device's current snapshot.
type device struct {
	name     string
	raw      []byte
	lines    []string
	sum      string
	cfg      *campion.Config
	parseErr error
}

// Session is the daemon's fleet state. All methods are safe for
// concurrent use; ingests serialize (each one audits), reads serve the
// latest finished audit.
type Session struct {
	opts    Options
	store   *campion.FleetStore
	journal *obs.Journal
	met     *sessionMetrics

	mu      sync.Mutex
	devices map[string]*device

	// resultMu guards the published audit state separately from the
	// ingest path, so report reads never wait on an in-flight audit's
	// representative diffs.
	resultMu sync.RWMutex
	result   *campion.FleetResult
	index    map[string]int // device name -> index in result.Devices
	last     AuditStats
	ingested uint64
}

// New builds an empty session. A nil Store gets a fresh in-memory
// store; a disk-backed Store gets its write-through memo enabled (the
// session exists to keep lookups hot).
func New(opts Options) *Session {
	store := opts.Store
	if store == nil {
		store = campion.OpenMemFleetStore()
	} else {
		store.EnableMemo()
	}
	if opts.Diff.Journal == nil {
		opts.Diff.Journal = opts.Journal
	}
	return &Session{
		opts:    opts,
		store:   store,
		journal: opts.Journal,
		met:     newSessionMetrics(opts.Metrics),
		devices: map[string]*device{},
	}
}

// IngestResult describes what one snapshot did to the session.
type IngestResult struct {
	Device string `json:"device"`
	// Op is "ingest" (content changed; an audit ran), "noop" (bytes
	// identical to the current snapshot; nothing ran), or "remove".
	Op string `json:"op"`
	// Kind records how the snapshot arrived: "push", "watch", or "seed".
	Kind string `json:"kind,omitempty"`
	// Changed is the edited line range of the new snapshot ("12-14",
	// "" when the edit only deleted lines); ChangedPrev is the
	// corresponding range of the previous snapshot.
	Changed     string `json:"changed,omitempty"`
	ChangedPrev string `json:"changed_prev,omitempty"`
	// Dirty names the components the edit can have touched — span
	// overlap closed over the reference graph (telemetry; see dirty.go).
	Dirty []string `json:"dirty,omitempty"`
	// ParseError is set when the snapshot failed to parse. It is still
	// ingested: the device's pairs degrade to parse errors, exactly as
	// in a batch run, and a later good snapshot heals it.
	ParseError string `json:"parse_error,omitempty"`
	// Audit summarizes the re-audit this snapshot triggered (nil for
	// no-ops and for seed ingests with AuditAfter deferred).
	Audit *AuditStats `json:"audit,omitempty"`
}

// AuditStats summarizes one DiffFleet pass over the session.
type AuditStats struct {
	Devices     int   `json:"devices"`
	Failed      int   `json:"failed"`
	Classes     int   `json:"classes"`
	RepPairs    int   `json:"rep_pairs"`
	RepComputed int   `json:"rep_computed"`
	DurNS       int64 `json:"dur_ns"`
}

// RediffRatio is the fraction of needed representative pairs this audit
// actually diffed — 0 for a fully cache-served (steady-state) audit,
// 1 for a cold one. The daemon's headline number.
func (a AuditStats) RediffRatio() float64 {
	if a.RepPairs == 0 {
		return 0
	}
	return float64(a.RepComputed) / float64(a.RepPairs)
}

// checkName rejects names that would garble URLs or journal lines.
func checkName(name string) error {
	if name == "" || strings.ContainsAny(name, "/\\ \t\n") {
		return fmt.Errorf("%w: %q", ErrBadName, name)
	}
	return nil
}

// Ingest records a device snapshot and, when its bytes differ from the
// current one, re-audits the fleet. kind labels the arrival path for
// the journal ("push", "watch", "seed"). Byte-identical snapshots are
// no-ops: no parse, no audit. audit=false defers the re-audit (bulk
// seeding); call Audit once afterwards.
func (s *Session) Ingest(ctx context.Context, name string, raw []byte, kind string, audit bool) (IngestResult, error) {
	if err := checkName(name); err != nil {
		return IngestResult{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	res := IngestResult{Device: name, Kind: kind}
	sum := campion.ContentSum(raw)
	prev := s.devices[name]
	if prev != nil && prev.sum == sum {
		res.Op = "noop"
		s.met.snapshot("noop")
		s.journal.Emit(obs.Event{Type: obs.EvSnapshot, Device: name, Op: "noop", Kind: kind})
		return res, nil
	}
	res.Op = "ingest"

	d := &device{name: name, raw: append([]byte(nil), raw...), sum: sum, lines: splitLines(raw)}
	d.cfg, d.parseErr = s.parse(name, raw)
	if d.parseErr != nil {
		res.ParseError = d.parseErr.Error()
	}

	detail := map[string]string{"sum": sum[:12]}
	if prev == nil {
		res.Dirty = allComponents(d.cfg)
		if n := len(d.lines); n > 0 {
			res.Changed = lineRange{1, n}.String()
		}
	} else {
		oldR, newR := changedRange(prev.lines, d.lines)
		res.Changed, res.ChangedPrev = newR.String(), oldR.String()
		res.Dirty = dirtyComponents(prev.cfg, d.cfg, oldR, newR)
	}
	if res.Changed != "" {
		detail["changed"] = res.Changed
	}
	if res.ChangedPrev != "" {
		detail["changed_prev"] = res.ChangedPrev
	}
	if len(res.Dirty) > 0 {
		// The journal line carries the blast radius itself (it is short:
		// an edit touches a handful of components); the count rides in N.
		detail["dirty"] = strings.Join(res.Dirty, ", ")
	}
	s.devices[name] = d
	s.met.snapshot("ingest")
	s.met.dirty.Add(uint64(len(res.Dirty)))
	s.met.devices.Set(int64(len(s.devices)))
	ev := obs.Event{Type: obs.EvSnapshot, Device: name, Op: "ingest", Kind: kind,
		N: int64(len(res.Dirty)), Detail: detail}
	if d.parseErr != nil {
		ev.Err = "parse"
	}
	s.journal.Emit(ev)

	if !audit {
		return res, nil
	}
	st, err := s.auditLocked(ctx)
	if err != nil {
		return res, err
	}
	res.Audit = &st
	return res, nil
}

// Remove drops a device from the session and re-audits. audit=false
// defers the re-audit, as with Ingest.
func (s *Session) Remove(ctx context.Context, name string, audit bool) (IngestResult, error) {
	if err := checkName(name); err != nil {
		return IngestResult{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.devices[name]; !ok {
		return IngestResult{}, fmt.Errorf("%w: %q", ErrUnknownDevice, name)
	}
	delete(s.devices, name)
	s.met.snapshot("remove")
	s.met.devices.Set(int64(len(s.devices)))
	s.journal.Emit(obs.Event{Type: obs.EvSnapshot, Device: name, Op: "remove"})
	res := IngestResult{Device: name, Op: "remove"}
	if len(s.devices) == 0 {
		s.resultMu.Lock()
		s.result, s.index = nil, nil
		s.resultMu.Unlock()
		return res, nil
	}
	if !audit {
		return res, nil
	}
	st, err := s.auditLocked(ctx)
	if err != nil {
		return res, err
	}
	res.Audit = &st
	return res, nil
}

// Audit re-runs the fleet audit over the current snapshots (the
// explicit form of what every content-changing Ingest does).
func (s *Session) Audit(ctx context.Context) (AuditStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.auditLocked(ctx)
}

// auditLocked runs DiffFleet over the session's devices — every hash
// and every unchanged class pair served by the warm store — and
// publishes the result. Caller holds s.mu.
func (s *Session) auditLocked(ctx context.Context) (AuditStats, error) {
	if len(s.devices) == 0 {
		s.resultMu.Lock()
		s.result, s.index, s.last = nil, nil, AuditStats{}
		s.resultMu.Unlock()
		return AuditStats{}, nil
	}
	names := make([]string, 0, len(s.devices))
	for n := range s.devices {
		names = append(names, n)
	}
	sort.Strings(names)
	fleetDevs := make([]campion.FleetDevice, len(names))
	for i, n := range names {
		d := s.devices[n]
		fd := campion.FleetDevice{Name: n, ContentSum: d.sum}
		if d.parseErr != nil {
			err := d.parseErr
			fd.Load = func() (*campion.Config, error) { return nil, err }
		} else {
			fd.Config = d.cfg
		}
		fleetDevs[i] = fd
	}

	start := time.Now()
	fr, err := campion.DiffFleet(ctx, fleetDevs, campion.FleetOptions{
		BatchOptions: s.opts.Diff,
		Store:        s.store,
	})
	if err != nil {
		return AuditStats{}, err
	}
	st := AuditStats{
		Devices: fr.Stats.Devices, Failed: fr.Stats.Failed,
		Classes: fr.Stats.Classes, RepPairs: fr.Stats.RepPairs,
		RepComputed: fr.Stats.RepComputed, DurNS: int64(time.Since(start)),
	}

	index := make(map[string]int, len(names))
	for i, n := range names {
		index[n] = i
	}
	s.resultMu.Lock()
	s.result, s.index, s.last = fr, index, st
	s.ingested++
	s.resultMu.Unlock()

	s.met.audit(st)
	s.journal.Emit(obs.Event{Type: obs.EvAudit, Dur: st.DurNS,
		N: int64(st.RepComputed), Total: int64(st.RepPairs),
		Detail: map[string]string{
			"devices": fmt.Sprintf("%d", st.Devices),
			"classes": fmt.Sprintf("%d", st.Classes),
		}})
	return st, nil
}

// parse builds the device's configuration from raw bytes.
func (s *Session) parse(name string, raw []byte) (*campion.Config, error) {
	if s.opts.Vendor != campion.VendorUnknown {
		return campion.ParseAs(s.opts.Vendor, name, string(raw))
	}
	return campion.Parse(name, string(raw))
}

// Report expands the audited result for one device pair. The pair is
// oriented by the session's deterministic device order (sorted names),
// matching what `campion -all` over the same files would print — asking
// for (b, a) returns the same oriented pair as (a, b).
func (s *Session) Report(a, b string) (campion.BatchResult, error) {
	s.resultMu.RLock()
	defer s.resultMu.RUnlock()
	if s.result == nil {
		return campion.BatchResult{}, ErrNoAudit
	}
	i, ok := s.index[a]
	if !ok {
		return campion.BatchResult{}, fmt.Errorf("%w: %q", ErrUnknownDevice, a)
	}
	j, ok := s.index[b]
	if !ok {
		return campion.BatchResult{}, fmt.Errorf("%w: %q", ErrUnknownDevice, b)
	}
	if i == j {
		return campion.BatchResult{}, fmt.Errorf("%w: %q twice", ErrBadName, a)
	}
	if i > j {
		i, j = j, i
	}
	return s.result.Pair(i, j), nil
}

// DeviceSummary is one device's row in the fleet summary.
type DeviceSummary struct {
	Name string `json:"name"`
	Hash string `json:"hash,omitempty"`
	// Class is the 1-based semantic class, 0 for failed devices.
	Class int    `json:"class,omitempty"`
	Error string `json:"error,omitempty"`
}

// FleetSummary is the GET /fleet payload: the audited fleet state.
type FleetSummary struct {
	Devices []DeviceSummary `json:"devices"`
	// Classes lists each semantic class's member device names;
	// element 0 of each is the representative.
	Classes   [][]string `json:"classes"`
	Audit     AuditStats `json:"audit"`
	Snapshots uint64     `json:"snapshots"`
}

// Fleet snapshots the audited fleet state.
func (s *Session) Fleet() (FleetSummary, error) {
	s.resultMu.RLock()
	defer s.resultMu.RUnlock()
	if s.result == nil {
		return FleetSummary{}, ErrNoAudit
	}
	fr := s.result
	sum := FleetSummary{Audit: s.last, Snapshots: s.ingested}
	classOf := map[string]int{}
	sum.Classes = make([][]string, len(fr.Classes))
	for ci, cl := range fr.Classes {
		members := make([]string, len(cl.Members))
		for n, m := range cl.Members {
			members[n] = fr.Devices[m].Name
			classOf[fr.Devices[m].Name] = ci + 1
		}
		sum.Classes[ci] = members
	}
	sum.Devices = make([]DeviceSummary, len(fr.Devices))
	for i, d := range fr.Devices {
		ds := DeviceSummary{Name: d.Name, Hash: d.Hash, Class: classOf[d.Name]}
		if err := fr.DeviceErrs[i]; err != nil {
			ds.Error = err.Error()
		}
		sum.Devices[i] = ds
	}
	return sum, nil
}

// Snapshot returns the raw bytes of a device's current snapshot.
func (s *Session) Snapshot(name string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.devices[name]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), d.raw...), true
}

// Devices returns the current device names, sorted.
func (s *Session) Devices() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.devices))
	for n := range s.devices {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// LastAudit returns the most recent audit's stats (zero before any).
func (s *Session) LastAudit() AuditStats {
	s.resultMu.RLock()
	defer s.resultMu.RUnlock()
	return s.last
}

// sessionMetrics is the campion_session_* instrument set.
type sessionMetrics struct {
	ingest, noop, remove *obs.Counter
	devices              *obs.Gauge
	dirty                *obs.Counter
	audits               *obs.Counter
	repPairs, repDiffed  *obs.Counter
	rediffPercent        *obs.Gauge
	auditDur             *obs.Histogram
}

func newSessionMetrics(reg *obs.Registry) *sessionMetrics {
	if reg == nil {
		reg = obs.Default
	}
	snaps := func(op string) *obs.Counter {
		return reg.Counter("campion_session_snapshots_total",
			"device snapshots received by the session", obs.L("op", op))
	}
	return &sessionMetrics{
		ingest:  snaps("ingest"),
		noop:    snaps("noop"),
		remove:  snaps("remove"),
		devices: reg.Gauge("campion_session_devices", "devices currently in the session"),
		dirty: reg.Counter("campion_session_dirty_components_total",
			"components inside snapshot edits' blast radii"),
		audits: reg.Counter("campion_session_audits_total", "incremental fleet audits run"),
		repPairs: reg.Counter("campion_session_rep_pairs_total",
			"representative pairs needed across session audits"),
		repDiffed: reg.Counter("campion_session_rep_computed_total",
			"representative pairs actually re-diffed across session audits"),
		rediffPercent: reg.Gauge("campion_session_rediff_ratio_percent",
			"last audit's re-diff ratio (rep pairs computed / needed), in percent"),
		auditDur: reg.Histogram("campion_session_audit_duration_nanoseconds",
			"incremental audit wall time"),
	}
}

func (m *sessionMetrics) snapshot(op string) {
	switch op {
	case "ingest":
		m.ingest.Inc()
	case "noop":
		m.noop.Inc()
	case "remove":
		m.remove.Inc()
	}
}

func (m *sessionMetrics) audit(st AuditStats) {
	m.audits.Inc()
	m.repPairs.Add(uint64(st.RepPairs))
	m.repDiffed.Add(uint64(st.RepComputed))
	m.rediffPercent.Set(int64(100 * st.RediffRatio()))
	m.auditDur.Observe(st.DurNS)
}
