package srp

import (
	"testing"
	"testing/quick"

	"repro/internal/cisco"
	"repro/internal/ir"
	"repro/internal/juniper"
	"repro/internal/netaddr"
)

func TestOSPFShortestPaths(t *testing.T) {
	// 0 --1-- 1 --1-- 2
	//  \------5------/
	links := []OSPFLink{
		{A: 0, B: 1, CostA2B: 1, CostB2A: 1},
		{A: 1, B: 2, CostA2B: 1, CostB2A: 1},
		{A: 0, B: 2, CostA2B: 5, CostB2A: 5},
	}
	subnet := netaddr.MustParsePrefix("10.99.0.0/24")
	p := NewOSPFProblem(3, links, 2, subnet)
	sol, ok := p.Solve()
	if !ok {
		t.Fatal("should converge")
	}
	// Node 0: min(5 direct, 1+1 via node 1) = 2.
	r0 := sol.Selected[0][subnet]
	if r0 == nil || r0.MED != 2 {
		t.Errorf("node 0 metric = %v, want 2", r0)
	}
	r1 := sol.Selected[1][subnet]
	if r1 == nil || r1.MED != 1 {
		t.Errorf("node 1 metric = %v, want 1", r1)
	}
	if sol.Selected[2][subnet].MED != 0 {
		t.Error("destination metric should be 0")
	}
}

// TestTheorem33OSPF validates the soundness theorem for the OSPF
// instantiation with randomized topologies: two networks with equal
// per-link costs (locally equivalent) always compute identical solutions.
func TestTheorem33OSPF(t *testing.T) {
	f := func(seed uint32) bool {
		rng := seed
		next := func(n int) int {
			rng = rng*1664525 + 1013904223
			return int(rng>>16) % n
		}
		nodes := 3 + next(5)
		var links []OSPFLink
		// A ring plus random chords keeps everything connected.
		for i := 0; i < nodes; i++ {
			links = append(links, OSPFLink{
				A: i, B: (i + 1) % nodes,
				CostA2B: 1 + next(10), CostB2A: 1 + next(10),
			})
		}
		for k := 0; k < next(4); k++ {
			a, b := next(nodes), next(nodes)
			if a == b {
				continue
			}
			links = append(links, OSPFLink{A: a, B: b, CostA2B: 1 + next(10), CostB2A: 1 + next(10)})
		}
		subnet := netaddr.MustParsePrefix("10.99.0.0/24")
		dest := next(nodes)
		p1 := NewOSPFProblem(nodes, links, dest, subnet)
		// The "other vendor" network: identical structural attributes.
		links2 := append([]OSPFLink{}, links...)
		p2 := NewOSPFProblem(nodes, links2, dest, subnet)
		s1, ok1 := p1.Solve()
		s2, ok2 := p2.Solve()
		return ok1 && ok2 && s1.Equal(s2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestOSPFCostDifferenceChangesSolution(t *testing.T) {
	links := []OSPFLink{
		{A: 0, B: 1, CostA2B: 1, CostB2A: 1},
		{A: 1, B: 2, CostA2B: 1, CostB2A: 1},
		{A: 0, B: 2, CostA2B: 5, CostB2A: 5},
	}
	subnet := netaddr.MustParsePrefix("10.99.0.0/24")
	s1, _ := NewOSPFProblem(3, links, 2, subnet).Solve()
	// Backup router with a mistranslated cost on 0-1.
	links2 := append([]OSPFLink{}, links...)
	links2[0].CostA2B = 9
	s2, _ := NewOSPFProblem(3, links2, 2, subnet).Solve()
	if s1.Equal(s2) {
		t.Error("changing a link cost should change the routing solution")
	}
}

const figure1a = `ip prefix-list NETS permit 10.9.0.0/16 le 32
ip prefix-list NETS permit 10.100.0.0/16 le 32
ip community-list standard COMM permit 10:10
ip community-list standard COMM permit 10:11
route-map POL deny 10
 match ip address NETS
route-map POL deny 20
 match community COMM
route-map POL permit 30
 set local-preference 30
`

const figure1bBuggy = `policy-options {
    prefix-list NETS {
        10.9.0.0/16;
        10.100.0.0/16;
    }
    community COMM members [ 10:10 10:11 ];
    policy-statement POL {
        term rule1 { from prefix-list NETS; then reject; }
        term rule2 { from community COMM; then reject; }
        term rule3 { then { local-preference 30; accept; } }
    }
}
`

const figure1bFixed = `policy-options {
    community C10 members 10:10;
    community C11 members 10:11;
    policy-statement POL {
        term rule1 {
            from {
                route-filter 10.9.0.0/16 orlonger;
                route-filter 10.100.0.0/16 orlonger;
            }
            then reject;
        }
        term rule2 { from community [ C10 C11 ]; then reject; }
        term rule3 { then { local-preference 30; accept; } }
    }
}
`

// chain builds the 3-node line: origin(0, AS 65002) — middle(1, AS 65001)
// — observer(2, AS 65001 iBGP). The middle router applies POL as import
// from the origin.
func chain(middle *ir.Config) *BGPNetwork {
	return &BGPNetwork{
		Nodes: 3,
		Sessions: []BGPSession{
			{Edge: Edge{From: 0, To: 1}, FromASN: 65002, ToASN: 65001,
				ImportConfig: middle, Import: []string{"POL"}},
			{Edge: Edge{From: 1, To: 2}, FromASN: 65001, ToASN: 65001},
		},
	}
}

// TestTheorem33BGP validates the theorem end to end on the Figure 1
// policies: with a behaviorally equivalent translation the two networks
// compute identical solutions; with the buggy translation they diverge on
// exactly the advertisements Campion localizes.
func TestTheorem33BGP(t *testing.T) {
	c, err := cisco.Parse("c.cfg", figure1a)
	if err != nil {
		t.Fatal(err)
	}
	jBuggy, err := juniper.Parse("jb.cfg", figure1bBuggy)
	if err != nil {
		t.Fatal(err)
	}
	jFixed, err := juniper.Parse("jf.cfg", figure1bFixed)
	if err != nil {
		t.Fatal(err)
	}

	adverts := []*ir.Route{
		ir.NewRoute(netaddr.MustParsePrefix("10.9.1.0/24")),  // Difference 1 witness
		ir.NewRoute(netaddr.MustParsePrefix("192.0.2.0/24")), // clean
		ir.NewRoute(netaddr.MustParsePrefix("10.9.0.0/16")),  // rejected by both
		ir.NewRoute(netaddr.MustParsePrefix("203.0.113.0/24")),
	}
	adverts[3].Communities["10:10"] = true // Difference 2 witness
	for _, r := range adverts {
		r.ASPath = []int64{65002}
	}

	solve := func(mid *ir.Config) *Solution {
		p := chain(mid).NewBGPProblem(0, adverts)
		sol, ok := p.Solve()
		if !ok {
			t.Fatal("no convergence")
		}
		return sol
	}
	cSol := solve(c)
	fixedSol := solve(jFixed)
	buggySol := solve(jBuggy)

	if !cSol.Equal(fixedSol) {
		t.Error("locally equivalent networks must have identical solutions (Theorem 3.3)")
	}
	if cSol.Equal(buggySol) {
		t.Error("the buggy translation should change the routing solution")
	}

	// The divergence is exactly on the localized advertisements.
	d1 := netaddr.MustParsePrefix("10.9.1.0/24")
	if cSol.Selected[2][d1] != nil {
		t.Error("cisco network should drop 10.9.1.0/24 at the observer")
	}
	if buggySol.Selected[2][d1] == nil {
		t.Error("buggy juniper network should propagate 10.9.1.0/24")
	}
	d2 := netaddr.MustParsePrefix("203.0.113.0/24")
	if cSol.Selected[2][d2] != nil || buggySol.Selected[2][d2] == nil {
		t.Error("community-tagged advert should diverge (Difference 2)")
	}
	clean := netaddr.MustParsePrefix("192.0.2.0/24")
	if cSol.Selected[2][clean] == nil || buggySol.Selected[2][clean] == nil {
		t.Error("clean advert should propagate in both networks")
	}
}

func TestBGPLoopPrevention(t *testing.T) {
	// Square of eBGP routers: route must not loop.
	n := &BGPNetwork{
		Nodes: 3,
		Sessions: []BGPSession{
			{Edge: Edge{From: 0, To: 1}, FromASN: 1, ToASN: 2},
			{Edge: Edge{From: 1, To: 2}, FromASN: 2, ToASN: 3},
			{Edge: Edge{From: 2, To: 0}, FromASN: 3, ToASN: 1},
		},
	}
	r := ir.NewRoute(netaddr.MustParsePrefix("10.0.0.0/8"))
	r.ASPath = []int64{1}
	p := n.NewBGPProblem(0, []*ir.Route{r})
	sol, ok := p.Solve()
	if !ok {
		t.Fatal("should converge")
	}
	r2 := sol.Selected[2][r.Prefix]
	if r2 == nil {
		t.Fatal("node 2 should learn the route")
	}
	if len(r2.ASPath) != 3 { // 3,2 prepended onto [1]... 2 then 3: [3 2 1]? From 0→1 prepends AS1? no: prepends FromASN=1? it already has [1]
		t.Logf("as-path at node 2: %v", r2.ASPath)
	}
}

func TestPreferBGPLadder(t *testing.T) {
	base := func() *ir.Route {
		r := ir.NewRoute(netaddr.MustParsePrefix("10.0.0.0/8"))
		r.ASPath = []int64{1, 2}
		return r
	}
	hi := base()
	hi.LocalPref = 200
	lo := base()
	if PreferBGP(hi, lo) >= 0 {
		t.Error("higher local-pref preferred")
	}
	short := base()
	short.ASPath = []int64{1}
	if PreferBGP(short, lo) >= 0 {
		t.Error("shorter as-path preferred")
	}
	med := base()
	med.MED = 5
	if PreferBGP(lo, med) >= 0 {
		t.Error("lower MED preferred")
	}
	w := base()
	w.Weight = 100
	if PreferBGP(w, lo) >= 0 {
		t.Error("higher weight preferred first")
	}
	if PreferBGP(base(), base()) != 0 {
		t.Error("equal routes tie")
	}
}

func TestNonConvergenceDetected(t *testing.T) {
	// Two non-destination nodes each prefer the route heard from the
	// other (higher metric), so selections inflate forever — the classic
	// BGP oscillation shape.
	p := &Problem{
		Nodes: 3,
		Edges: []Edge{{From: 0, To: 1}, {From: 0, To: 2}, {From: 1, To: 2}, {From: 2, To: 1}},
		Dest:  0,
		Initial: []*ir.Route{
			ir.NewRoute(netaddr.MustParsePrefix("10.0.0.0/8")),
		},
		Transfer: func(e Edge, r *ir.Route) *ir.Route {
			out := r.Clone()
			out.MED++
			return out
		},
		Prefer: func(a, b *ir.Route) int {
			if a.MED > b.MED { // perversely prefer higher metric
				return -1
			}
			if a.MED < b.MED {
				return 1
			}
			return 0
		},
		MaxIterations: 20,
	}
	if _, ok := p.Solve(); ok {
		t.Error("oscillating instance should not report convergence")
	}
}

// TestRouteReflection models the §5.1 Scenario 2 outage mechanism: a
// route learned over iBGP is only re-advertised to other iBGP peers by a
// route reflector. Losing the reflector role on a replacement device
// black-holes every client behind it.
func TestRouteReflection(t *testing.T) {
	// origin(0, AS 65002) --eBGP-- clientA(1) --iBGP-- RR(2) --iBGP-- clientB(3)
	build := func(reflect bool) *BGPNetwork {
		return &BGPNetwork{
			Nodes: 4,
			Sessions: []BGPSession{
				{Edge: Edge{From: 0, To: 1}, FromASN: 65002, ToASN: 65001},
				{Edge: Edge{From: 1, To: 2}, FromASN: 65001, ToASN: 65001},
				{Edge: Edge{From: 2, To: 3}, FromASN: 65001, ToASN: 65001, Reflector: reflect},
			},
		}
	}
	r := ir.NewRoute(netaddr.MustParsePrefix("10.0.0.0/8"))
	r.ASPath = []int64{65002}

	solveAt3 := func(reflect bool) *ir.Route {
		sol, ok := build(reflect).NewBGPProblem(0, []*ir.Route{r}).Solve()
		if !ok {
			t.Fatal("no convergence")
		}
		return sol.Selected[3][r.Prefix]
	}
	if got := solveAt3(true); got == nil {
		t.Error("with the reflector role, clientB should learn the route")
	}
	if got := solveAt3(false); got != nil {
		t.Error("without the reflector role, clientB must NOT learn the iBGP route")
	}
	// clientA (one iBGP hop from the eBGP edge) learns either way.
	sol, _ := build(false).NewBGPProblem(0, []*ir.Route{r}).Solve()
	if sol.Selected[2][r.Prefix] == nil {
		t.Error("the RR itself learns the route over the first iBGP hop")
	}
}
