// Package srp implements the Stable Routing Problem of the paper's §3.4
// (Definition 3.1): a topology, a set of routes, per-edge transfer
// functions, and a per-protocol preference relation, solved to a fixpoint
// of per-node route selections. It provides a generic solver plus BGP-like
// and OSPF-like instantiations whose transfer functions are the IR route
// maps and link costs — which lets the repository empirically validate
// Theorem 3.3 (soundness): locally equivalent networks compute identical
// routing solutions, so Campion never needs to model the protocols
// themselves.
package srp

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/netaddr"
)

// Edge is a directed topology edge.
type Edge struct {
	From, To int
}

// Transfer transforms a route as it crosses an edge; nil drops the route.
type Transfer func(e Edge, r *ir.Route) *ir.Route

// Prefer compares two candidate routes for the same prefix; negative
// means a is preferred.
type Prefer func(a, b *ir.Route) int

// Problem is a stable routing problem instance for one destination.
type Problem struct {
	Nodes    int
	Edges    []Edge
	Dest     int
	Initial  []*ir.Route // routes originated at Dest
	Transfer Transfer
	Prefer   Prefer
	// MaxIterations bounds the fixpoint computation (default 4·Nodes+8).
	MaxIterations int
}

// Solution maps each node to its selected route per prefix (nil when the
// node has no route to the prefix).
type Solution struct {
	// Selected[node][prefix] is the chosen route.
	Selected []map[netaddr.Prefix]*ir.Route
}

// Equal compares two solutions attribute-by-attribute.
func (s *Solution) Equal(o *Solution) bool {
	if len(s.Selected) != len(o.Selected) {
		return false
	}
	for i := range s.Selected {
		if len(s.Selected[i]) != len(o.Selected[i]) {
			return false
		}
		for p, r := range s.Selected[i] {
			if !r.Equal(o.Selected[i][p]) {
				return false
			}
		}
	}
	return true
}

// Solve computes the SRP fixpoint by synchronous iteration (a Bellman-
// Ford-style relaxation). It reports convergence; non-convergent
// instances (route oscillation) return ok=false.
func (p *Problem) Solve() (*Solution, bool) {
	maxIter := p.MaxIterations
	if maxIter <= 0 {
		maxIter = 4*p.Nodes + 8
	}
	cur := make([]map[netaddr.Prefix]*ir.Route, p.Nodes)
	for i := range cur {
		cur[i] = map[netaddr.Prefix]*ir.Route{}
	}
	for _, r := range p.Initial {
		cur[p.Dest][r.Prefix] = r.Clone()
	}
	in := map[int][]Edge{}
	for _, e := range p.Edges {
		in[e.To] = append(in[e.To], e)
	}
	for iter := 0; iter < maxIter; iter++ {
		next := make([]map[netaddr.Prefix]*ir.Route, p.Nodes)
		for v := 0; v < p.Nodes; v++ {
			next[v] = map[netaddr.Prefix]*ir.Route{}
			if v == p.Dest {
				for _, r := range p.Initial {
					next[v][r.Prefix] = r.Clone()
				}
				continue
			}
			for _, e := range in[v] {
				for _, r := range cur[e.From] {
					t := p.Transfer(e, r.Clone())
					if t == nil {
						continue
					}
					best, ok := next[v][t.Prefix]
					if !ok || p.Prefer(t, best) < 0 {
						next[v][t.Prefix] = t
					}
				}
			}
		}
		if solutionsEqual(cur, next) {
			return &Solution{Selected: next}, true
		}
		cur = next
	}
	return &Solution{Selected: cur}, false
}

func solutionsEqual(a, b []map[netaddr.Prefix]*ir.Route) bool {
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for p, r := range a[i] {
			if !r.Equal(b[i][p]) {
				return false
			}
		}
	}
	return true
}

// BGPSession describes one directed policy application: routes sent from
// From to To traverse From's export chain then To's import chain.
type BGPSession struct {
	Edge
	ExportConfig *ir.Config // From's config (resolves its export chain)
	Export       []string
	ImportConfig *ir.Config // To's config
	Import       []string
	FromASN      int64
	ToASN        int64
	// Reflector marks the sender as a route reflector for this session:
	// it may re-advertise iBGP-learned routes to the receiver (its
	// client, or a non-client when the route came from a client). Without
	// it, standard iBGP does not re-advertise iBGP-learned routes — the
	// rule whose misconfiguration caused the paper's would-be severe
	// outage (§5.1 Scenario 2).
	Reflector bool
}

// BGPNetwork is a BGP-like SRP instantiation over IR configurations.
type BGPNetwork struct {
	Nodes    int
	Sessions []BGPSession
}

// NewBGPProblem builds the SRP for one destination node originating the
// given routes through the network's policies.
func (n *BGPNetwork) NewBGPProblem(dest int, originated []*ir.Route) *Problem {
	byEdge := map[Edge]BGPSession{}
	var edges []Edge
	for _, s := range n.Sessions {
		byEdge[s.Edge] = s
		edges = append(edges, s.Edge)
	}
	transfer := func(e Edge, r *ir.Route) *ir.Route {
		s := byEdge[e]
		// AS-path loop prevention.
		for _, asn := range r.ASPath {
			if asn == s.ToASN && s.ToASN != s.FromASN {
				return nil
			}
		}
		ibgpEdge := s.FromASN == s.ToASN
		// Standard iBGP does not re-advertise iBGP-learned routes; only a
		// route reflector does.
		if ibgpEdge && r.Protocol == ir.ProtoIBGP && !s.Reflector {
			return nil
		}
		out := r.Clone()
		if ibgpEdge {
			out.Protocol = ir.ProtoIBGP
		} else {
			out.Protocol = ir.ProtoBGP
		}
		if s.FromASN != s.ToASN {
			out.ASPath = append([]int64{s.FromASN}, out.ASPath...)
			out.LocalPref = 100 // local preference is not transitive across eBGP
		}
		if s.ExportConfig != nil {
			res := s.ExportConfig.EvalPolicyChain(s.Export, out, ir.Permit)
			if res.Action != ir.Permit {
				return nil
			}
			out = res.Route
		}
		if s.ImportConfig != nil {
			res := s.ImportConfig.EvalPolicyChain(s.Import, out, ir.Permit)
			if res.Action != ir.Permit {
				return nil
			}
			out = res.Route
		}
		return out
	}
	return &Problem{
		Nodes:    n.Nodes,
		Edges:    edges,
		Dest:     dest,
		Initial:  originated,
		Transfer: transfer,
		Prefer:   PreferBGP,
	}
}

// PreferBGP is the standard BGP decision ladder over the attributes the
// IR models: weight, local preference, as-path length, MED, then a
// deterministic tiebreak on next hop.
func PreferBGP(a, b *ir.Route) int {
	switch {
	case a.Weight != b.Weight:
		if a.Weight > b.Weight {
			return -1
		}
		return 1
	case a.LocalPref != b.LocalPref:
		if a.LocalPref > b.LocalPref {
			return -1
		}
		return 1
	case len(a.ASPath) != len(b.ASPath):
		if len(a.ASPath) < len(b.ASPath) {
			return -1
		}
		return 1
	case a.MED != b.MED:
		if a.MED < b.MED {
			return -1
		}
		return 1
	case a.NextHop != b.NextHop:
		if a.NextHop < b.NextHop {
			return -1
		}
		return 1
	}
	return 0
}

// OSPFLink is a weighted undirected link for the OSPF-like instantiation.
type OSPFLink struct {
	A, B    int
	CostA2B int // cost configured on A's interface toward B
	CostB2A int
}

// NewOSPFProblem builds the SRP computing shortest-path routes to the
// destination's subnet; the route's MED field carries the accumulated
// metric.
func NewOSPFProblem(nodes int, links []OSPFLink, dest int, subnet netaddr.Prefix) *Problem {
	var edges []Edge
	cost := map[Edge]int{}
	for _, l := range links {
		e1 := Edge{From: l.A, To: l.B}
		e2 := Edge{From: l.B, To: l.A}
		edges = append(edges, e1, e2)
		// The receiver pays the cost configured on its own outgoing
		// interface toward the sender (OSPF adds the cost of the
		// interface used to reach the advertising neighbor).
		cost[e1] = l.CostB2A
		cost[e2] = l.CostA2B
	}
	origin := ir.NewRoute(subnet)
	origin.Protocol = ir.ProtoOSPF
	origin.MED = 0
	transfer := func(e Edge, r *ir.Route) *ir.Route {
		out := r.Clone()
		out.MED += int64(cost[e])
		return out
	}
	prefer := func(a, b *ir.Route) int {
		switch {
		case a.MED < b.MED:
			return -1
		case a.MED > b.MED:
			return 1
		}
		return 0
	}
	return &Problem{
		Nodes:    nodes,
		Edges:    edges,
		Dest:     dest,
		Initial:  []*ir.Route{origin},
		Transfer: transfer,
		Prefer:   prefer,
	}
}

// String renders a solution for debugging.
func (s *Solution) String() string {
	out := ""
	for i, m := range s.Selected {
		out += fmt.Sprintf("node %d:\n", i)
		for p, r := range m {
			out += fmt.Sprintf("  %v -> %v\n", p, r)
		}
	}
	return out
}
