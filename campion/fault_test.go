package campion

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

// heavyConfig builds a configuration whose single route-map chain is
// expensive to compare: hundreds of stanzas over distinct prefix lists.
// Against budgetMaxNodes the chain comparison aborts (its allocation is
// roughly double the ceiling) while the small fleet() pairs — and the
// route encoding itself — fit comfortably. The margins on both sides are
// wide (thousands of nodes), and BDD construction is deterministic, so
// the classification is stable across worker counts and runs.
func heavyConfig(host string, terms int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "hostname %s\n", host)
	for i := 0; i < terms; i++ {
		fmt.Fprintf(&b, "ip prefix-list P%d permit 10.%d.%d.0/24 le 28\n", i, i%200, (i*7)%250)
	}
	for i := 0; i < terms; i++ {
		fmt.Fprintf(&b, "route-map HEAVY permit %d\n match ip address P%d\n set local-preference %d\n", 10+i*10, i, 100+i)
	}
	b.WriteString("router bgp 65001\n neighbor 10.0.12.2 remote-as 65002\n neighbor 10.0.12.2 route-map HEAVY in\n")
	return b.String()
}

const (
	heavyTerms      = 400
	budgetMaxNodes  = 20000
	malformedConfig = "### not a router configuration ###\n{{{ 42 }}}\n"
)

// TestBatchBudgetIsolation: in one batch, a budget-busting pair fails
// with a structured ErrBudget PairError (with file/line provenance into
// the offending chain) while the healthy pair's diffs are unaffected —
// at both inner worker counts, so the classification is deterministic
// across pool sizes.
func TestBatchBudgetIsolation(t *testing.T) {
	cfgs := fleetCfgs(t)
	h1 := mustParse(t, "h1.cfg", heavyConfig("h1", heavyTerms))
	h2 := mustParse(t, "h2.cfg", heavyConfig("h2", heavyTerms))
	pairs := []ConfigPair{
		{Name: "good", Config1: cfgs[0].Config, Config2: cfgs[2].Config},
		{Name: "huge", Config1: h1, Config2: h2},
	}
	for _, workers := range []int{1, 4} {
		opts := BatchOptions{}
		opts.Workers = workers
		opts.MaxNodes = budgetMaxNodes
		results, err := DiffBatch(context.Background(), pairs, opts)
		if err != nil {
			t.Fatalf("workers=%d: batch-level error: %v", workers, err)
		}
		if results[0].Err != nil {
			t.Fatalf("workers=%d: healthy pair failed: %v", workers, results[0].Err)
		}
		if len(results[0].Report.RouteMapDiffs) == 0 {
			t.Errorf("workers=%d: healthy pair lost its diffs", workers)
		}
		if !errors.Is(results[1].Err, ErrBudget) {
			t.Fatalf("workers=%d: want ErrBudget for huge pair, got %v", workers, results[1].Err)
		}
		var pe *PairError
		if !errors.As(results[1].Err, &pe) {
			t.Fatalf("workers=%d: want *PairError, got %T", workers, results[1].Err)
		}
		if pe.File == "" || pe.Line == 0 {
			t.Errorf("workers=%d: budget failure lacks provenance: %q:%d", workers, pe.File, pe.Line)
		}
		if ErrKind(results[1].Err) != "budget" {
			t.Errorf("workers=%d: ErrKind = %q", workers, ErrKind(results[1].Err))
		}
	}
}

// TestBatchMidCancelPartialResults: a cancellation landing while a batch
// is mid-flight (injected deterministically: the task hook fires on the
// first pair that compares config c's TRIGGER chain) leaves the pairs
// that already completed with their reports, marks the rest ErrCanceled,
// and surfaces the context error at the batch level.
func TestBatchMidCancelPartialResults(t *testing.T) {
	cfgs := fleetCfgs(t)
	trigger := mustParse(t, "trig.cfg", strings.ReplaceAll(
		`hostname trig
ip prefix-list NETS permit 10.9.0.0/16 le 24
route-map TRIGGER permit 10
 match ip address NETS
 set local-preference 300
route-map TRIGGER deny 20
router bgp 65001
 neighbor 10.0.12.2 remote-as 65002
 neighbor 10.0.12.2 route-map TRIGGER in
`, "\r", ""))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	core.TestTaskHook = func(_, names2 []string) {
		for _, n := range names2 {
			if n == "TRIGGER" {
				cancel()
			}
		}
	}
	defer func() { core.TestTaskHook = nil }()
	pairs := []ConfigPair{
		{Name: "a-b", Config1: cfgs[0].Config, Config2: cfgs[1].Config},
		{Name: "a-trig", Config1: cfgs[0].Config, Config2: trigger},
		{Name: "b-trig", Config1: cfgs[1].Config, Config2: trigger},
	}
	results, err := DiffBatch(ctx, pairs, BatchOptions{BatchWorkers: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("batch error = %v, want context.Canceled", err)
	}
	if results[0].Err != nil || results[0].Report == nil {
		t.Fatalf("pair before the cancel lost its result: %v", results[0].Err)
	}
	for _, r := range results[1:] {
		if !errors.Is(r.Err, ErrCanceled) || !errors.Is(r.Err, context.Canceled) {
			t.Errorf("pair %s: want ErrCanceled wrapping context.Canceled, got %v", r.Name, r.Err)
		}
	}
}

// TestDiffDirsFaultTolerance is the acceptance scenario: a directory
// audit containing one malformed configuration and one budget-busting
// pair completes, reporting a structured PairError with file provenance
// for each casualty and correct diffs for the healthy pairs.
func TestDiffDirsFaultTolerance(t *testing.T) {
	mkSmall := func(host string, pref int) string {
		return fmt.Sprintf(`hostname %s
ip prefix-list NETS permit 10.9.0.0/16 le 24
route-map POL permit 10
 match ip address NETS
 set local-preference %d
route-map POL deny 20
router bgp 65001
 neighbor 10.0.12.2 remote-as 65002
 neighbor 10.0.12.2 route-map POL in
`, host, pref)
	}
	dir1, dir2 := t.TempDir(), t.TempDir()
	write := func(dir, name, text string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(text), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(dir1, "good.cfg", mkSmall("good1", 100))
	write(dir2, "good.cfg", mkSmall("good2", 300))
	write(dir1, "broken.cfg", mkSmall("broken1", 100))
	write(dir2, "broken.cfg", malformedConfig)
	write(dir1, "huge.cfg", heavyConfig("huge1", heavyTerms))
	write(dir2, "huge.cfg", heavyConfig("huge2", heavyTerms))

	opts := BatchOptions{}
	opts.MaxNodes = budgetMaxNodes
	results, err := DiffDirsContext(context.Background(), dir1, dir2, opts)
	if err != nil {
		t.Fatalf("directory audit failed outright: %v", err)
	}
	byName := map[string]PairResult{}
	for _, r := range results {
		byName[r.Pair.Name] = r
	}
	if len(byName) != 3 {
		t.Fatalf("got %d pairs, want 3: %+v", len(byName), results)
	}

	good := byName["good"]
	if good.Err != nil {
		t.Fatalf("healthy pair failed: %v", good.Err)
	}
	if len(good.Report.RouteMapDiffs) == 0 {
		t.Error("healthy pair reported no route-map diffs")
	}

	broken := byName["broken"]
	if !errors.Is(broken.Err, ErrParse) {
		t.Fatalf("malformed pair: want ErrParse, got %v", broken.Err)
	}
	var pe *PairError
	if !errors.As(broken.Err, &pe) || pe.File != filepath.Join(dir2, "broken.cfg") {
		t.Errorf("parse failure should name the malformed file, got %+v", pe)
	}

	huge := byName["huge"]
	if !errors.Is(huge.Err, ErrBudget) {
		t.Fatalf("budget-busting pair: want ErrBudget, got %v", huge.Err)
	}
	if !errors.As(huge.Err, &pe) || pe.File == "" || pe.Line == 0 {
		t.Errorf("budget failure lacks config provenance: %+v", pe)
	}
}

// TestRunLogErrorKinds: batch failures land in the run log broken down
// by failure kind, and the summary JSON carries the breakdown.
func TestRunLogErrorKinds(t *testing.T) {
	cfgs := fleetCfgs(t)
	h1 := mustParse(t, "h1.cfg", heavyConfig("h1", heavyTerms))
	h2 := mustParse(t, "h2.cfg", heavyConfig("h2", heavyTerms))
	log := NewRunLog(4)
	opts := BatchOptions{RunLog: log, RunName: "kinds"}
	opts.MaxNodes = budgetMaxNodes
	pairs := []ConfigPair{
		{Name: "good", Config1: cfgs[0].Config, Config2: cfgs[1].Config},
		{Name: "huge", Config1: h1, Config2: h2},
		{Name: "missing", Config1: nil, Config2: nil},
	}
	if _, err := DiffBatch(context.Background(), pairs, opts); err != nil {
		t.Fatal(err)
	}
	sums := log.Summaries()
	if len(sums) != 1 {
		t.Fatalf("runs = %d, want 1", len(sums))
	}
	s := sums[0]
	if s.Errors != 2 {
		t.Errorf("Errors = %d, want 2", s.Errors)
	}
	if s.ErrorKinds["budget"] != 1 || s.ErrorKinds["parse"] != 1 {
		t.Errorf("ErrorKinds = %v, want budget:1 parse:1", s.ErrorKinds)
	}
}
