package campion_test

import (
	"fmt"
	"log"

	"repro/campion"
)

// Example compares a small Cisco/Juniper pair whose static routes differ
// and prints the per-component summary.
func Example() {
	cfg1, err := campion.Parse("r1.cfg", `hostname r1
ip route 10.1.1.2 255.255.255.254 10.2.2.2
`)
	if err != nil {
		log.Fatal(err)
	}
	cfg2, err := campion.Parse("r2.cfg", `system { host-name r2; }
routing-options {
    static { }
}
`)
	if err != nil {
		log.Fatal(err)
	}
	report, err := campion.Diff(cfg1, cfg2, campion.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("differences:", report.TotalDifferences())
	for _, d := range report.Structural {
		fmt.Printf("%s %s: %s vs %s\n", d.Component, d.Key, d.Value1, d.Value2)
	}
	// Output:
	// differences: 1
	// static-route 10.1.1.2/31: next-hop 10.2.2.2, admin-distance 1 vs None
}

// ExampleDiff_equivalent shows the clean-bill-of-health case: by the
// paper's Theorem 3.3, a pair with no differences computes identical
// routing solutions in any network.
func ExampleDiff_equivalent() {
	text := `hostname r
ip route 10.0.0.0 255.0.0.0 192.0.2.1
`
	cfg1, _ := campion.Parse("a.cfg", text)
	cfg2, _ := campion.Parse("b.cfg", text)
	report, _ := campion.Diff(cfg1, cfg2, campion.Options{})
	fmt.Println("equivalent:", report.TotalDifferences() == 0)
	// Output:
	// equivalent: true
}
