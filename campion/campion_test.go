package campion

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const ciscoText = `hostname r1
ip route 10.1.1.2 255.255.255.254 10.2.2.2
router bgp 65001
 neighbor 10.0.12.2 remote-as 65002
`

const juniperText = `system { host-name r2; }
routing-options {
    static {
        route 10.1.1.2/31 next-hop 10.2.2.2;
    }
    autonomous-system 65001;
}
protocols {
    bgp {
        group peers {
            type external;
            peer-as 65002;
            neighbor 10.0.12.2;
        }
    }
}
`

func TestDetectVendor(t *testing.T) {
	if DetectVendor(ciscoText) != VendorCisco {
		t.Error("cisco text misdetected")
	}
	if DetectVendor(juniperText) != VendorJuniper {
		t.Error("juniper text misdetected")
	}
	if DetectVendor("random words") != VendorUnknown {
		t.Error("unknown text misdetected")
	}
}

func TestParseAndDiff(t *testing.T) {
	c1, err := Parse("r1.cfg", ciscoText)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Parse("r2.cfg", juniperText)
	if err != nil {
		t.Fatal(err)
	}
	if c1.Vendor != VendorCisco || c2.Vendor != VendorJuniper {
		t.Error("vendor fields wrong")
	}
	rep, err := Diff(c1, c2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The static routes match (same prefix, next hop) except the
	// admin-distance default difference (IOS 1 vs JunOS 5) — reported as
	// an attribute diff; send-community differs too (JunOS default true).
	var sawStatic, sawSendComm bool
	for _, d := range rep.Structural {
		if d.Component == "static-route" {
			sawStatic = true
		}
		if d.Component == "bgp-neighbor" && d.Field == "send-community" {
			sawSendComm = true
		}
	}
	if !sawStatic {
		t.Error("expected static route attribute difference (AD defaults)")
	}
	if !sawSendComm {
		t.Error("expected send-community difference")
	}
	var buf bytes.Buffer
	if err := Write(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Difference 1") {
		t.Error("formatted output missing differences")
	}
	var sum bytes.Buffer
	WriteSummary(&sum, rep)
	if sum.Len() == 0 {
		t.Error("summary empty")
	}
	if _, err := JSON(rep); err != nil {
		t.Fatal(err)
	}
}

func TestParseAsAndErrors(t *testing.T) {
	if _, err := ParseAs(VendorCisco, "x", ciscoText); err != nil {
		t.Error(err)
	}
	if _, err := ParseAs(VendorJuniper, "x", juniperText); err != nil {
		t.Error(err)
	}
	if _, err := ParseAs(VendorUnknown, "x", "zzz"); err == nil {
		t.Error("unknown vendor should error")
	}
	if _, err := Parse("x", "no recognizable dialect"); err == nil {
		t.Error("undetectable text should error")
	}
}

func TestLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r1.cfg")
	if err := os.WriteFile(path, []byte(ciscoText), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Hostname != "r1" {
		t.Errorf("hostname = %q", cfg.Hostname)
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.cfg")); err == nil {
		t.Error("missing file should error")
	}
}

func TestParseAsArista(t *testing.T) {
	cfg, err := ParseAs(VendorArista, "a.cfg", "hostname sw1\nip route 10.0.0.0 255.0.0.0 192.0.2.1\n")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Vendor != VendorArista || cfg.Hostname != "sw1" {
		t.Errorf("cfg = %v %q", cfg.Vendor, cfg.Hostname)
	}
}
