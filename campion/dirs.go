package campion

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// FilePair is a matched pair of configuration files across two
// directories.
type FilePair struct {
	Name         string // shared base name (extension stripped)
	Path1, Path2 string
}

// PairFiles matches configuration files in two directories by base name
// (extension-insensitive) — the workflow of the paper's data-center
// operators, who compared every pair of backup routers. Files without a
// partner are returned separately.
func PairFiles(dir1, dir2 string) (pairs []FilePair, only1, only2 []string, err error) {
	list := func(dir string) (map[string]string, error) {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		out := map[string]string{}
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			name := e.Name()
			key := strings.TrimSuffix(name, filepath.Ext(name))
			out[key] = filepath.Join(dir, name)
		}
		return out, nil
	}
	m1, err := list(dir1)
	if err != nil {
		return nil, nil, nil, err
	}
	m2, err := list(dir2)
	if err != nil {
		return nil, nil, nil, err
	}
	for key, p1 := range m1 {
		if p2, ok := m2[key]; ok {
			pairs = append(pairs, FilePair{Name: key, Path1: p1, Path2: p2})
		} else {
			only1 = append(only1, p1)
		}
	}
	for key, p2 := range m2 {
		if _, ok := m1[key]; !ok {
			only2 = append(only2, p2)
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Name < pairs[j].Name })
	sort.Strings(only1)
	sort.Strings(only2)
	return pairs, only1, only2, nil
}

// PairResult is the outcome of diffing one file pair. Err, when
// non-nil, is a *PairError; classify it with errors.Is against
// ErrParse / ErrCanceled / ErrBudget / ErrInternal.
type PairResult struct {
	Pair   FilePair
	Report *Report
	Err    error
}

// DiffDirs loads and compares every matched configuration pair across two
// directories. Parsing fans out over one pool, and the comparisons run
// through DiffBatch (each pair's symbolic state is independent). Parse or
// diff failures are recorded per pair, not fatal.
func DiffDirs(dir1, dir2 string, opts Options) ([]PairResult, error) {
	return DiffDirsContext(context.Background(), dir1, dir2, BatchOptions{Options: opts})
}

// DiffDirsContext is DiffDirs with batch options and cancellation. The
// returned error is nil unless the directories themselves are unreadable
// or the context ended before every pair was handled — per-pair failures
// stay in the results, so a partial audit is still reported.
func DiffDirsContext(ctx context.Context, dir1, dir2 string, opts BatchOptions) ([]PairResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	pairs, only1, only2, err := PairFiles(dir1, dir2)
	if err != nil {
		return nil, err
	}
	results := make([]PairResult, len(pairs))

	// Parse all matched files on a bounded pool (per §5.4, parsing is a
	// significant share of end-to-end time at scale).
	loaded := make([]ConfigPair, len(pairs))
	workers := opts.BatchWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pairs) {
		workers = len(pairs)
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				p := pairs[i]
				results[i] = PairResult{Pair: p}
				if err := batchCtxErr(ctx); err != nil {
					results[i].Err = pairError(p.Name, ErrCanceled, err)
					continue
				}
				cfg1, err := LoadFile(p.Path1)
				if err != nil {
					results[i].Err = &PairError{Pair: p.Name, Kind: ErrParse, File: p.Path1, Err: err}
					continue
				}
				cfg2, err := LoadFile(p.Path2)
				if err != nil {
					results[i].Err = &PairError{Pair: p.Name, Kind: ErrParse, File: p.Path2, Err: err}
					continue
				}
				loaded[i] = ConfigPair{Name: p.Name, Config1: cfg1, Config2: cfg2}
			}
		}()
	}
	for i := range pairs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	// Compare everything that parsed.
	var batch []ConfigPair
	var batchIdx []int
	for i, cp := range loaded {
		if cp.Config1 != nil && cp.Config2 != nil {
			batch = append(batch, cp)
			batchIdx = append(batchIdx, i)
		}
	}
	batchResults, batchErr := DiffBatch(ctx, batch, opts)
	for k, br := range batchResults {
		i := batchIdx[k]
		results[i].Report = br.Report
		results[i].Err = br.Err
	}
	for _, p := range only1 {
		results = append(results, PairResult{
			Pair: FilePair{Name: filepath.Base(p), Path1: p},
			Err: &PairError{Pair: filepath.Base(p), Kind: ErrParse, File: p,
				Err: fmt.Errorf("no matching configuration in %s", dir2)},
		})
	}
	for _, p := range only2 {
		results = append(results, PairResult{
			Pair: FilePair{Name: filepath.Base(p), Path2: p},
			Err: &PairError{Pair: filepath.Base(p), Kind: ErrParse, File: p,
				Err: fmt.Errorf("no matching configuration in %s", dir1)},
		})
	}
	return results, batchErr
}
