// Package campion is the public API of this Campion reproduction
// (Tang et al., "Campion: Debugging Router Configuration Differences",
// SIGCOMM 2021). It checks behavioral equivalence of two individual
// router configurations and localizes every difference to the affected
// message headers and the responsible configuration lines.
//
// Quick start:
//
//	cfg1, err := campion.LoadFile("cisco.cfg")
//	cfg2, err := campion.LoadFile("juniper.cfg")
//	report, err := campion.Diff(cfg1, cfg2, campion.Options{})
//	campion.Write(os.Stdout, report)
//
// The comparison is modular (§3 of the paper): ACLs and route maps are
// checked semantically with BDDs (all differences are found, each
// localized to an input set and a pair of clauses); static routes,
// connected routes, BGP session properties, OSPF link properties, and
// administrative distances are checked structurally.
//
// Scaling up, the entry points layer on one another: Diff compares one
// pair; DiffBatch / DiffAll / DiffDirs run many pairs on a parallel
// worker pool with per-pair failure isolation (see PairError and the
// Err* sentinels); DiffFleet audits a whole fleet by clustering devices
// into semantic equivalence classes and diffing only class
// representatives, with hashes and reports persisted across runs in a
// FleetStore. The `campion serve` daemon (internal/session) keeps a
// fleet audit warm across configuration pushes using exactly these
// pieces. Observability — span traces, metrics, run logs, and the
// flight-recorder Journal — attaches through Options and BatchOptions
// and is free when unset.
package campion

import (
	"context"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/arista"
	"repro/internal/cisco"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/ir"
	"repro/internal/juniper"
	"repro/internal/obs"
	"repro/internal/present"
)

// Config is a parsed router configuration in vendor-independent form.
type Config = ir.Config

// Vendor identifies a configuration dialect.
type Vendor = ir.Vendor

// Supported vendors.
const (
	VendorUnknown = ir.VendorUnknown
	VendorCisco   = ir.VendorCisco
	VendorJuniper = ir.VendorJuniper
	VendorArista  = ir.VendorArista
)

// Options configures a Diff run.
type Options = core.Options

// PolicyCache carries compiled route-map chains and their BDD factory
// across sequential Diff calls over the same devices (see
// Options.PolicyCache). Construct with NewPolicyCache; never share one
// across goroutines.
type PolicyCache = core.PolicyCache

// NewPolicyCache returns an empty compiled-policy cache.
func NewPolicyCache() *PolicyCache { return core.NewPolicyCache() }

// Component selects a class of configuration checks.
type Component = core.Component

// The comparable components (Table 1 of the paper).
const (
	ComponentRouteMaps = core.ComponentRouteMaps
	ComponentACLs      = core.ComponentACLs
	ComponentStatic    = core.ComponentStatic
	ComponentConnected = core.ComponentConnected
	ComponentBGP       = core.ComponentBGP
	ComponentOSPF      = core.ComponentOSPF
	ComponentAdmin     = core.ComponentAdmin
)

// Report is the localized result of comparing two configurations.
type Report = core.Report

// PairError is the structured failure of one comparison: the failed
// unit, one of the four failure-kind sentinels, configuration file/line
// provenance when attributable, and the underlying cause. Every non-nil
// error in a BatchResult/PairResult is one of these.
type PairError = core.PairError

// The failure kinds. Every error this package reports wraps exactly one;
// classify with errors.Is (context.Canceled and context.DeadlineExceeded
// also match through ErrCanceled's cause) or label it with ErrKind.
var (
	// ErrParse marks unreadable, unparseable, or missing configurations.
	ErrParse = core.ErrParse
	// ErrCanceled marks comparisons abandoned to a canceled context or a
	// passed deadline (including Options.Timeout).
	ErrCanceled = core.ErrCanceled
	// ErrBudget marks comparisons aborted by the Options.MaxNodes BDD
	// ceiling; only the offending pair fails.
	ErrBudget = core.ErrBudget
	// ErrInternal marks a crash isolated inside one comparison.
	ErrInternal = core.ErrInternal
)

// ErrKind labels an error's failure kind — "parse", "canceled",
// "budget", or "internal" — and returns "" for nil. It is the label
// vocabulary of the campion_pair_errors_total metric and the run log.
func ErrKind(err error) string { return core.ErrKind(err) }

// Observability re-exports: Options.Tracer/Metrics and
// BatchOptions.RunLog accept these, and Serve exposes them over HTTP.
// See internal/obs for the full API.
type (
	// Tracer records a run-scoped span tree (construct with NewTracer);
	// write it out with WriteChromeTrace or WriteTree.
	Tracer = obs.Tracer
	// Span is one recorded span; Options.TraceParent takes one.
	Span = obs.Span
	// Metrics is a registry of counters, gauges, and histograms with
	// Prometheus text exposition.
	Metrics = obs.Registry
	// RunLog remembers recent batch runs for the /runs endpoint.
	RunLog = obs.RunLog
	// ObsServer serves /metrics, /runs, and /debug/pprof.
	ObsServer = obs.Server
	// Journal is the flight recorder: an append-only JSONL run journal
	// every pipeline stage emits into (Options.Journal). Replay one with
	// ReadJournal / AnalyzeJournal, or live-follow it via Listen.
	Journal = obs.Journal
	// JournalEvent is one flight-recorder record.
	JournalEvent = obs.Event
	// BuildInfo is the binary's build provenance (VCS revision, go
	// version), stamped into journal headers and the -version flag.
	BuildInfo = obs.BuildInfo
)

// NewTracer starts an empty run tracer.
func NewTracer() *Tracer { return obs.NewTracer() }

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// NewRunLog returns a run log keeping the last capacity runs.
func NewRunLog(capacity int) *RunLog { return obs.NewRunLog(capacity) }

// DefaultMetrics is the process-wide registry: the parsers report into
// it, and `campion -serve` exposes it.
func DefaultMetrics() *Metrics { return obs.Default }

// DefaultRunLog is the process-wide run log exposed by `campion -serve`.
func DefaultRunLog() *RunLog { return obs.DefaultRuns }

// NewJournal starts a flight-recorder journal writing JSONL to w; a nil
// w keeps the journal listener-only (live progress without a file).
func NewJournal(w io.Writer) *Journal { return obs.NewJournal(w) }

// ReadJournal parses a JSONL journal stream back into events. A
// malformed final line (a crashed run's torn write) is tolerated.
func ReadJournal(r io.Reader) ([]JournalEvent, error) { return obs.ReadJournal(r) }

// ReadBuild reports the running binary's build provenance.
func ReadBuild() BuildInfo { return obs.ReadBuild() }

// CacheFingerprint is the options fingerprint keying persistent report
// cache entries — journal run headers carry it so a replayed run can be
// matched against cache state.
func CacheFingerprint(opts Options) string { return fleet.OptionsFingerprint(opts) }

// recordParse reports one parser invocation into the default registry —
// a counter bump and one histogram observation per file, which is noise
// next to the parse itself.
func recordParse(v Vendor, start time.Time, err error) {
	l := obs.L("vendor", v.String())
	obs.Default.Counter("campion_parses_total", "configurations parsed", l).Inc()
	obs.Default.Histogram("campion_parse_duration_nanoseconds", "configuration parse wall time", l).
		Observe(int64(time.Since(start)))
	if err != nil {
		obs.Default.Counter("campion_parse_errors_total", "configurations that failed to parse", l).Inc()
	}
}

// ComponentStats is the execution profile of one component of a Diff run
// (wall time, worker count, pair dedup, BDD arena/cache counters).
type ComponentStats = core.ComponentStats

// DetectVendor guesses the dialect of a configuration text: JunOS uses a
// curly-brace hierarchy, IOS uses flat line-oriented commands.
func DetectVendor(text string) Vendor {
	braces := strings.Count(text, "{")
	semis := strings.Count(text, ";")
	if braces >= 2 && semis >= 2 {
		return VendorJuniper
	}
	for _, marker := range []string{"policy-options", "routing-options", "host-name"} {
		if strings.Contains(text, marker) {
			return VendorJuniper
		}
	}
	for _, marker := range []string{"ip route", "route-map", "router bgp", "interface ", "hostname", "access-list"} {
		if strings.Contains(text, marker) {
			return VendorCisco
		}
	}
	return VendorUnknown
}

// Parse parses configuration text, auto-detecting the vendor. The file
// name is recorded in text spans for localization.
func Parse(filename, text string) (*Config, error) {
	v := DetectVendor(text)
	if v == VendorUnknown {
		return nil, fmt.Errorf("campion: cannot detect configuration dialect of %s", filename)
	}
	return ParseAs(v, filename, text)
}

// ParseAs parses configuration text as a specific vendor dialect.
// Arista EOS cannot be auto-detected (its syntax is IOS-compatible);
// select it explicitly here or with the CLI's -vendor flags.
func ParseAs(v Vendor, filename, text string) (cfg *Config, err error) {
	start := time.Now()
	defer func() { recordParse(v, start, err) }()
	switch v {
	case VendorCisco:
		return cisco.Parse(filename, text)
	case VendorJuniper:
		return juniper.Parse(filename, text)
	case VendorArista:
		return arista.Parse(filename, text)
	}
	return nil, fmt.Errorf("campion: unsupported vendor %v", v)
}

// LoadFile reads and parses a configuration file with vendor
// auto-detection.
func LoadFile(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(path, string(data))
}

// Diff compares two router configurations and returns the localized
// differences. A nil error with an empty report means the configurations
// are behaviorally equivalent over the modeled components — by the
// paper's Theorem 3.3, the two routers then compute the same routing
// solutions in any network context.
func Diff(c1, c2 *Config, opts Options) (*Report, error) {
	return core.Diff(c1, c2, opts)
}

// DiffContext is Diff under a context: cancellation and deadlines are
// polled from inside the BDD kernels, so even a comparison stuck deep in
// symbolic computation stops promptly. A cancellation, an expired
// Options.Timeout, or an Options.MaxNodes budget abort surfaces as a
// *PairError (ErrCanceled / ErrBudget).
func DiffContext(ctx context.Context, c1, c2 *Config, opts Options) (*Report, error) {
	return core.DiffContext(ctx, c1, c2, opts)
}

// Write renders the report as the paper-style difference tables.
func Write(w io.Writer, rep *Report) error {
	return present.Format(w, rep)
}

// WriteSummary renders per-component difference counts.
func WriteSummary(w io.Writer, rep *Report) {
	present.Summary(w, rep)
}

// JSON renders the report as indented JSON.
func JSON(rep *Report) ([]byte, error) {
	return present.ToJSON(rep)
}
