package campion

import (
	"context"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestDiffAllRunLog: a batch records one run with live pair progress and
// the aggregate difference count.
func TestDiffAllRunLog(t *testing.T) {
	cfgs := fleetCfgs(t)
	runs := NewRunLog(8)
	results, err := DiffAll(context.Background(), cfgs, BatchOptions{RunLog: runs})
	if err != nil {
		t.Fatal(err)
	}
	wantDiffs := 0
	for _, res := range results {
		if res.Report != nil {
			wantDiffs += res.Report.TotalDifferences()
		}
	}
	sums := runs.Summaries()
	if len(sums) != 1 {
		t.Fatalf("runs = %d, want 1", len(sums))
	}
	s := sums[0]
	if !strings.Contains(s.Name, "all-pairs") {
		t.Errorf("run name = %q, want all-pairs default", s.Name)
	}
	if s.Pairs != 3 || s.Completed != 3 || !s.Done || s.Errors != 0 {
		t.Errorf("run = %+v", s)
	}
	if int(s.Differences) != wantDiffs {
		t.Errorf("run differences = %d, want %d", s.Differences, wantDiffs)
	}
}

// TestDiffBatchSpansAndMetrics: the batch emits a batch→worker→pair→diff
// span chain and fills the pair latency histogram.
func TestDiffBatchSpansAndMetrics(t *testing.T) {
	cfgs := fleetCfgs(t)
	pairs := []ConfigPair{
		{Name: "a-b", Config1: cfgs[0].Config, Config2: cfgs[1].Config},
		{Name: "a-c", Config1: cfgs[0].Config, Config2: cfgs[2].Config},
	}
	tr := NewTracer()
	reg := NewMetrics()
	opts := BatchOptions{BatchWorkers: 2}
	opts.Tracer = tr
	opts.Metrics = reg
	if _, err := DiffBatch(context.Background(), pairs, opts); err != nil {
		t.Fatal(err)
	}

	spans := tr.Spans()
	byID := map[int]obs.SpanInfo{}
	for _, s := range spans {
		byID[s.ID] = s
	}
	var pairSpans, diffSpans int
	for _, s := range spans {
		switch s.Name {
		case "batch":
			if s.Parent != -1 {
				t.Errorf("batch span parented by %d", s.Parent)
			}
		case "pair":
			pairSpans++
			if w := byID[s.Parent]; w.Name != "worker" {
				t.Errorf("pair parented by %q", w.Name)
			}
			if s.Attr("diffs") == "" {
				t.Errorf("pair span lacks diffs attr: %v", s.Attrs)
			}
		case "diff":
			diffSpans++
			if p := byID[s.Parent]; p.Name != "pair" {
				t.Errorf("diff parented by %q, want pair", p.Name)
			}
		}
	}
	if pairSpans != 2 || diffSpans != 2 {
		t.Errorf("pair spans = %d, diff spans = %d, want 2 each", pairSpans, diffSpans)
	}

	if n := reg.Histogram("campion_pair_duration_nanoseconds", "").Count(); n != 2 {
		t.Errorf("pair latency observations = %d, want 2", n)
	}
	if v := reg.Counter("campion_pairs_total", "").Value(); v != 2 {
		t.Errorf("pairs counter = %d, want 2", v)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "campion_pair_duration_nanoseconds_bucket") {
		t.Errorf("exposition lacks pair histogram:\n%s", b.String())
	}
}

// TestParseMetrics: every parse reports a vendor-labeled counter and
// duration into the default registry.
func TestParseMetrics(t *testing.T) {
	before := DefaultMetrics().Counter("campion_parses_total", "", obs.L("vendor", "cisco")).Value()
	mustParse(t, "m.cfg", "hostname m\nroute-map X permit 10\n")
	after := DefaultMetrics().Counter("campion_parses_total", "", obs.L("vendor", "cisco")).Value()
	if after != before+1 {
		t.Errorf("cisco parse counter %d -> %d, want +1", before, after)
	}
}
