package campion

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/fleet"
	"repro/internal/testnets"
)

// fleetConfigs parses a generated fleet into NamedConfigs.
func fleetConfigs(t *testing.T, members []testnets.FleetMember) []NamedConfig {
	t.Helper()
	out := make([]NamedConfig, len(members))
	for i, m := range members {
		cfg, err := Parse(m.Name+".cfg", m.Text)
		if err != nil {
			t.Fatalf("parse %s: %v", m.Name, err)
		}
		out[i] = NamedConfig{Name: m.Name, Config: cfg}
	}
	return out
}

func renderResult(t *testing.T, res BatchResult) string {
	t.Helper()
	var b bytes.Buffer
	fmt.Fprintf(&b, "=== %s ===\n", res.Name)
	switch {
	case res.Err != nil:
		fmt.Fprintf(&b, "error: %v\n", res.Err)
	case res.Report.TotalDifferences() == 0:
		b.WriteString("equivalent\n")
	default:
		if err := Write(&b, res.Report); err != nil {
			t.Fatalf("render %s: %v", res.Name, err)
		}
		js, err := JSON(res.Report)
		if err != nil {
			t.Fatalf("json %s: %v", res.Name, err)
		}
		b.Write(js)
	}
	return b.String()
}

// TestDiffFleetMatchesNaive is the golden sweep pinning the tentpole
// guarantee: clustered + expanded output is byte-identical (rendered
// text AND JSON, which includes file:line locations) to naive all-pairs
// DiffAll over the same fleet.
func TestDiffFleetMatchesNaive(t *testing.T) {
	members := testnets.Fleet(testnets.FleetParams{Devices: 14, Templates: 3, MutationRate: 0.15, Seed: 11})
	cfgs := fleetConfigs(t, members)

	naive, err := DiffAll(context.Background(), cfgs, BatchOptions{})
	if err != nil {
		t.Fatalf("naive: %v", err)
	}

	devices := make([]FleetDevice, len(cfgs))
	for i, c := range cfgs {
		devices[i] = FleetDevice{Name: c.Name, Config: c.Config}
	}
	fr, err := DiffFleet(context.Background(), devices, FleetOptions{})
	if err != nil {
		t.Fatalf("fleet: %v", err)
	}
	if fr.Stats.Classes >= len(devices) {
		t.Fatalf("no clustering: %d classes over %d devices", fr.Stats.Classes, len(devices))
	}
	if want := testnets.ExpectedClasses(members); fr.Stats.Classes != want {
		t.Fatalf("classes = %d, want %d", fr.Stats.Classes, want)
	}
	if fr.Stats.RepPairs >= len(naive) {
		t.Fatalf("representative pairs (%d) not fewer than naive pairs (%d)", fr.Stats.RepPairs, len(naive))
	}

	clustered := fr.Results()
	if len(clustered) != len(naive) {
		t.Fatalf("pair count: %d vs naive %d", len(clustered), len(naive))
	}
	for i := range naive {
		want := renderResult(t, naive[i])
		got := renderResult(t, clustered[i])
		if got != want {
			t.Fatalf("pair %d diverged:\n--- naive ---\n%s\n--- clustered ---\n%s", i, want, got)
		}
	}
}

// TestDiffAllCacheDirMatchesNaive pins the DiffAll wiring: with CacheDir
// the fleet path engages and stays byte-identical, cold and warm.
func TestDiffAllCacheDirMatchesNaive(t *testing.T) {
	members := testnets.Fleet(testnets.FleetParams{Devices: 10, Templates: 3, MutationRate: 0.2, Seed: 3})
	cfgs := fleetConfigs(t, members)

	naive, err := DiffAll(context.Background(), cfgs, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for run := 0; run < 2; run++ {
		got, err := DiffAll(context.Background(), cfgs, BatchOptions{CacheDir: dir})
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if len(got) != len(naive) {
			t.Fatalf("run %d: pair count %d vs %d", run, len(got), len(naive))
		}
		for i := range naive {
			if a, b := renderResult(t, naive[i]), renderResult(t, got[i]); a != b {
				t.Fatalf("run %d pair %d diverged:\n%s\nvs\n%s", run, i, a, b)
			}
		}
	}
}

// loaderDevices builds Load-based devices (the CLI shape) and a counter
// of how many parses actually ran.
func loaderDevices(t *testing.T, members []testnets.FleetMember, parses *int32, mu *sync.Mutex) []FleetDevice {
	t.Helper()
	out := make([]FleetDevice, len(members))
	for i, m := range members {
		m := m
		out[i] = FleetDevice{
			Name:       m.Name,
			File:       m.Name + ".cfg",
			ContentSum: fleet.ContentSum([]byte(m.Text)),
			Load: func() (*Config, error) {
				mu.Lock()
				*parses++
				mu.Unlock()
				return Parse(m.Name+".cfg", m.Text)
			},
		}
	}
	return out
}

// TestDiffFleetWarmCache: a second run over an unchanged fleet parses
// nothing, diffs nothing, and still produces byte-identical output.
func TestDiffFleetWarmCache(t *testing.T) {
	members := testnets.Fleet(testnets.FleetParams{Devices: 12, Templates: 3, MutationRate: 0.1, Seed: 5})
	dir := t.TempDir()
	var mu sync.Mutex
	var parses int32

	cold, err := DiffFleet(context.Background(), loaderDevices(t, members, &parses, &mu), FleetOptions{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if parses != int32(len(members)) {
		t.Fatalf("cold run parsed %d devices, want %d", parses, len(members))
	}
	if cold.Stats.RepComputed == 0 || cold.Stats.Cache.ReportMisses == 0 {
		t.Fatalf("cold run did no work: %+v", cold.Stats)
	}

	parses = 0
	warm, err := DiffFleet(context.Background(), loaderDevices(t, members, &parses, &mu), FleetOptions{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if parses != 0 {
		t.Fatalf("warm run parsed %d devices, want 0", parses)
	}
	if warm.Stats.RepComputed != 0 {
		t.Fatalf("warm run recomputed %d representative pairs", warm.Stats.RepComputed)
	}
	if warm.Stats.ParsesAvoided != len(members) {
		t.Fatalf("ParsesAvoided = %d, want %d", warm.Stats.ParsesAvoided, len(members))
	}
	coldRes, warmRes := cold.Results(), warm.Results()
	for i := range coldRes {
		if a, b := renderResult(t, coldRes[i]), renderResult(t, warmRes[i]); a != b {
			t.Fatalf("pair %d: warm output diverged from cold:\n%s\nvs\n%s", i, a, b)
		}
	}
}

// TestDiffFleetCacheCorruption: trashing every cache entry between runs
// degrades to recomputation, never to an error or wrong output.
func TestDiffFleetCacheCorruption(t *testing.T) {
	members := testnets.Fleet(testnets.FleetParams{Devices: 8, Templates: 2, MutationRate: 0, Seed: 1})
	dir := t.TempDir()
	var mu sync.Mutex
	var parses int32

	cold, err := DiffFleet(context.Background(), loaderDevices(t, members, &parses, &mu), FleetOptions{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}

	// Corrupt every entry in place.
	n := 0
	filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && info.Mode().IsRegular() {
			os.WriteFile(path, []byte("garbage"), 0o644)
			n++
		}
		return nil
	})
	if n == 0 {
		t.Fatal("no cache entries written")
	}

	parses = 0
	rerun, err := DiffFleet(context.Background(), loaderDevices(t, members, &parses, &mu), FleetOptions{CacheDir: dir})
	if err != nil {
		t.Fatalf("rerun over corrupted cache: %v", err)
	}
	if parses == 0 {
		t.Fatal("corrupted hash entries should have forced re-parsing")
	}
	if rerun.Stats.Cache.Corrupt == 0 {
		t.Fatal("corruption not counted")
	}
	a, b := cold.Results(), rerun.Results()
	for i := range a {
		if x, y := renderResult(t, a[i]), renderResult(t, b[i]); x != y {
			t.Fatalf("pair %d diverged after corruption recovery", i)
		}
	}
}

// TestDiffFleetConcurrentSharedCacheDir: two concurrent audits sharing
// one cache directory (the documented last-writer-wins model) both
// succeed with identical output. Run under -race in CI.
func TestDiffFleetConcurrentSharedCacheDir(t *testing.T) {
	members := testnets.Fleet(testnets.FleetParams{Devices: 8, Templates: 2, MutationRate: 0.1, Seed: 9})
	dir := t.TempDir()
	results := make([][]BatchResult, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var mu sync.Mutex
			var parses int32
			fr, err := DiffFleet(context.Background(),
				loaderDevices(t, members, &parses, &mu), FleetOptions{CacheDir: dir})
			errs[g] = err
			if fr != nil {
				results[g] = fr.Results()
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("run %d: %v", g, err)
		}
	}
	for i := range results[0] {
		if a, b := renderResult(t, results[0][i]), renderResult(t, results[1][i]); a != b {
			t.Fatalf("concurrent runs diverged at pair %d", i)
		}
	}
}

// TestDiffFleetParanoid: clean fleets pass; a forged hash collision
// (two semantically different devices claiming one hash) is detected.
func TestDiffFleetParanoid(t *testing.T) {
	members := testnets.Fleet(testnets.FleetParams{Devices: 6, Templates: 2, MutationRate: 0, Seed: 2})
	devices := make([]FleetDevice, len(members))
	for i, m := range members {
		cfg, err := Parse(m.Name+".cfg", m.Text)
		if err != nil {
			t.Fatal(err)
		}
		devices[i] = FleetDevice{Name: m.Name, Config: cfg}
	}
	if _, err := DiffFleet(context.Background(), devices, FleetOptions{Paranoid: true}); err != nil {
		t.Fatalf("paranoid on honest fleet: %v", err)
	}

	// Forge a collision: devices 0 and 1 are different templates but
	// claim the same hash.
	forged := append([]FleetDevice(nil), devices...)
	forged[0].Hash = "forged-hash"
	forged[1].Hash = "forged-hash"
	if _, err := DiffFleet(context.Background(), forged, FleetOptions{Paranoid: true}); err == nil {
		t.Fatal("paranoid mode missed a forged hash collision")
	} else if !strings.Contains(err.Error(), "collision") {
		t.Fatalf("unexpected paranoid error: %v", err)
	}
}

// TestDiffFleetDeviceErrors: unparseable devices surface per-pair errors
// in the expansion, shaped like naive DiffAll's missing-config errors.
func TestDiffFleetDeviceErrors(t *testing.T) {
	members := testnets.Fleet(testnets.FleetParams{Devices: 4, Templates: 2, MutationRate: 0, Seed: 4})
	devices := make([]FleetDevice, len(members))
	for i, m := range members {
		if i == 1 {
			devices[i] = FleetDevice{Name: m.Name, Load: func() (*Config, error) {
				return nil, fmt.Errorf("synthetic parse failure")
			}}
			continue
		}
		cfg, err := Parse(m.Name+".cfg", m.Text)
		if err != nil {
			t.Fatal(err)
		}
		devices[i] = FleetDevice{Name: m.Name, Config: cfg}
	}
	fr, err := DiffFleet(context.Background(), devices, FleetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fr.Stats.Failed != 1 {
		t.Fatalf("Failed = %d, want 1", fr.Stats.Failed)
	}
	res := fr.Results()
	if len(res) != 6 {
		t.Fatalf("pair count %d, want 6 (failed devices still occupy pairs)", len(res))
	}
	bad := 0
	for _, r := range res {
		if strings.Contains(r.Name, members[1].Name) {
			if r.Err == nil || ErrKind(r.Err) != "parse" {
				t.Fatalf("pair %s: want parse error, got %v", r.Name, r.Err)
			}
			var pe *PairError
			if !asPairError(r.Err, &pe) || pe.Pair != r.Name {
				t.Fatalf("pair %s: error not retargeted: %v", r.Name, r.Err)
			}
			bad++
		} else if r.Err != nil {
			t.Fatalf("healthy pair %s errored: %v", r.Name, r.Err)
		}
	}
	if bad != 3 {
		t.Fatalf("expected 3 failing pairs, got %d", bad)
	}
}

// TestDiffBatchCacheDir: the per-pair report cache in DiffBatch serves
// byte-identical reports on a warm run.
func TestDiffBatchCacheDir(t *testing.T) {
	members := testnets.Fleet(testnets.FleetParams{Devices: 4, Templates: 4, MutationRate: 0, Seed: 6})
	cfgs := fleetConfigs(t, members)
	var pairs []ConfigPair
	for i := 0; i < len(cfgs); i++ {
		for j := i + 1; j < len(cfgs); j++ {
			pairs = append(pairs, ConfigPair{
				Name:    fmt.Sprintf("%s vs %s", cfgs[i].Name, cfgs[j].Name),
				Config1: cfgs[i].Config, Config2: cfgs[j].Config,
			})
		}
	}
	naive, err := DiffBatch(context.Background(), pairs, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for run := 0; run < 2; run++ {
		got, err := DiffBatch(context.Background(), pairs, BatchOptions{CacheDir: dir})
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		for i := range naive {
			if a, b := renderResult(t, naive[i]), renderResult(t, got[i]); a != b {
				t.Fatalf("run %d pair %d diverged", run, i)
			}
		}
	}
	entries, err := os.ReadDir(filepath.Join(dir, "v1", "reports"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("no report entries persisted: %v", err)
	}
}

func asPairError(err error, out **PairError) bool {
	pe, ok := err.(*PairError)
	if ok {
		*out = pe
	}
	return ok
}
