package campion

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/testnets"
)

func mustParse(t testing.TB, name, text string) *Config {
	t.Helper()
	cfg, err := Parse(name, text)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// fleetCfgs builds a few parsed configurations with known pairwise
// differences: a and b are equivalent, c differs from both.
func fleetCfgs(t testing.TB) []NamedConfig {
	t.Helper()
	mk := func(host string, pref int) string {
		return fmt.Sprintf(`hostname %s
ip prefix-list NETS permit 10.9.0.0/16 le 24
route-map POL permit 10
 match ip address NETS
 set local-preference %d
route-map POL deny 20
router bgp 65001
 neighbor 10.0.12.2 remote-as 65002
 neighbor 10.0.12.2 route-map POL in
`, host, pref)
	}
	return []NamedConfig{
		{Name: "a", Config: mustParse(t, "a.cfg", mk("a", 100))},
		{Name: "b", Config: mustParse(t, "b.cfg", mk("b", 100))},
		{Name: "c", Config: mustParse(t, "c.cfg", mk("c", 300))},
	}
}

func TestDiffBatchOrderAndResults(t *testing.T) {
	cfgs := fleetCfgs(t)
	pairs := []ConfigPair{
		{Name: "a-b", Config1: cfgs[0].Config, Config2: cfgs[1].Config},
		{Name: "a-c", Config1: cfgs[0].Config, Config2: cfgs[2].Config},
		{Name: "b-c", Config1: cfgs[1].Config, Config2: cfgs[2].Config},
	}
	results, err := DiffBatch(context.Background(), pairs, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	for i, want := range []string{"a-b", "a-c", "b-c"} {
		if results[i].Name != want {
			t.Errorf("results[%d].Name = %q, want %q (input order)", i, results[i].Name, want)
		}
		if results[i].Err != nil {
			t.Errorf("pair %s: %v", want, results[i].Err)
		}
	}
	if n := results[0].Report.TotalDifferences(); n != 0 {
		t.Errorf("a-b differences = %d, want 0", n)
	}
	for _, i := range []int{1, 2} {
		if n := results[i].Report.RouteMapDiffs; len(n) == 0 {
			t.Errorf("%s: expected route-map differences", results[i].Name)
		}
	}
}

func TestDiffAllPairsEveryPair(t *testing.T) {
	cfgs := fleetCfgs(t)
	results, err := DiffAll(context.Background(), cfgs, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 { // 3 choose 2
		t.Fatalf("results = %d, want 3", len(results))
	}
	wantNames := []string{"a vs b", "a vs c", "b vs c"}
	for i, r := range results {
		if r.Name != wantNames[i] {
			t.Errorf("results[%d].Name = %q, want %q", i, r.Name, wantNames[i])
		}
	}
	if results[0].Report.TotalDifferences() != 0 {
		t.Error("a vs b should be equivalent")
	}
	if results[1].Report.TotalDifferences() == 0 || results[2].Report.TotalDifferences() == 0 {
		t.Error("pairs involving c should differ")
	}
}

// TestDiffBatchErrorIsolation: a pair that fails to diff must not abort
// its siblings.
func TestDiffBatchErrorIsolation(t *testing.T) {
	cfgs := fleetCfgs(t)
	pairs := []ConfigPair{
		{Name: "ok", Config1: cfgs[0].Config, Config2: cfgs[1].Config},
		{Name: "broken", Config1: nil, Config2: nil},
		{Name: "ok2", Config1: cfgs[0].Config, Config2: cfgs[2].Config},
	}
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("batch panicked instead of isolating the error: %v", r)
		}
	}()
	results, err := DiffBatch(context.Background(), pairs, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Errorf("healthy pairs failed: %v / %v", results[0].Err, results[2].Err)
	}
	if results[1].Err == nil {
		t.Error("broken pair should carry an error")
	}
}

// TestDiffBatchCancellation: a cancelled context stops the batch between
// pairs and marks the unstarted ones.
func TestDiffBatchCancellation(t *testing.T) {
	cfgs := fleetCfgs(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the batch starts
	var pairs []ConfigPair
	for i := 0; i < 16; i++ {
		pairs = append(pairs, ConfigPair{Name: fmt.Sprintf("p%d", i),
			Config1: cfgs[0].Config, Config2: cfgs[2].Config})
	}
	results, err := DiffBatch(ctx, pairs, BatchOptions{})
	if err == nil {
		t.Fatal("want ctx error")
	}
	if len(results) != len(pairs) {
		t.Fatalf("results = %d, want %d", len(results), len(pairs))
	}
	for _, r := range results {
		if r.Report == nil && r.Err == nil {
			t.Errorf("pair %s has neither report nor error", r.Name)
		}
	}
	var cancelled int
	for _, r := range results {
		if errors.Is(r.Err, context.Canceled) {
			cancelled++
			if !errors.Is(r.Err, ErrCanceled) {
				t.Errorf("pair %s: cancellation not classified as ErrCanceled: %v", r.Name, r.Err)
			}
		}
	}
	if cancelled == 0 {
		t.Error("no pair observed the cancellation")
	}
}

// TestDiffBatchDeterministicOutput: repeated parallel batch runs render
// byte-identical reports — pinning the acceptance criterion that parallel
// output matches sequential output exactly.
func TestDiffBatchDeterministicOutput(t *testing.T) {
	pairs := batchOverTestnets(t)
	render := func(opts BatchOptions) string {
		results, err := DiffBatch(context.Background(), pairs, opts)
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		for _, r := range results {
			fmt.Fprintf(&b, "== %s ==\n", r.Name)
			if r.Err != nil {
				t.Fatalf("%s: %v", r.Name, r.Err)
			}
			if err := Write(&b, r.Report); err != nil {
				t.Fatal(err)
			}
		}
		return b.String()
	}
	sequential := render(BatchOptions{BatchWorkers: 1, Options: Options{Workers: 1}})
	if !strings.Contains(sequential, "difference") && len(sequential) == 0 {
		t.Fatal("empty render")
	}
	for i := 0; i < 3; i++ {
		parallel := render(BatchOptions{BatchWorkers: 8, Options: Options{Workers: 2}})
		if parallel != sequential {
			t.Fatalf("parallel output diverges from sequential (run %d)", i)
		}
	}
}

// batchOverTestnets assembles the datacenter and university pairs — the
// workload the -race exercise and the batch benchmarks run over.
func batchOverTestnets(t testing.TB) []ConfigPair {
	t.Helper()
	var pairs []ConfigPair
	add := func(name string, p testnets.Pair) {
		pairs = append(pairs, ConfigPair{Name: name, Config1: p.Config1, Config2: p.Config2})
	}
	add("university-core", testnets.UniversityCore())
	add("university-border", testnets.UniversityBorder())
	add("datacenter-replacement", testnets.DatacenterReplacement())
	add("datacenter-gateway", testnets.DatacenterGateway())
	for i, p := range testnets.DatacenterToRPairs() {
		add(fmt.Sprintf("datacenter-tor-%d", i), p)
	}
	return pairs
}

// TestDiffBatchRaceExercise drives the full batch engine — batch-level
// and pair-level parallelism together — over the datacenter and
// university networks. Meaningful under -race (the CI runs it so).
func TestDiffBatchRaceExercise(t *testing.T) {
	pairs := batchOverTestnets(t)
	results, err := DiffBatch(context.Background(), pairs, BatchOptions{
		BatchWorkers: 4,
		Options:      Options{Workers: 4, ExhaustiveCommunities: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	var total int
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("%s: %v", r.Name, r.Err)
			continue
		}
		total += r.Report.TotalDifferences()
	}
	if total == 0 {
		t.Error("testnets pairs should report differences")
	}
}

// TestDiffAllPolicyCacheDeterminism is the byte-identity contract of the
// cross-pair compiled-policy cache: a DiffAll renders identically with
// the cache enabled and disabled, sequentially and across batch worker
// counts. It runs over a homogeneous fleet (the cache's best case: one
// vocabulary, maximal chain reuse) plus a vocabulary-shifting outlier
// that forces mid-run cache rebuilds.
func TestDiffAllPolicyCacheDeterminism(t *testing.T) {
	cfgs := fleetCfgs(t)
	// An outlier with extra community vocabulary: pairs touching it
	// fingerprint differently, exercising the rebuild path between hits.
	outlier := mustParse(t, "d.cfg", `hostname d
ip community-list standard LOUD permit 65000:777
route-map POL permit 10
 match community LOUD
 set local-preference 250
route-map POL deny 20
router bgp 65001
 neighbor 10.0.12.2 remote-as 65002
 neighbor 10.0.12.2 route-map POL in
`)
	cfgs = append(cfgs, NamedConfig{Name: "d", Config: outlier})

	render := func(opts BatchOptions) string {
		results, err := DiffAll(context.Background(), cfgs, opts)
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		for _, r := range results {
			fmt.Fprintf(&b, "== %s ==\n", r.Name)
			if r.Err != nil {
				t.Fatalf("%s: %v", r.Name, r.Err)
			}
			if err := Write(&b, r.Report); err != nil {
				t.Fatal(err)
			}
			data, err := JSON(r.Report)
			if err != nil {
				t.Fatal(err)
			}
			b.Write(data)
			b.WriteByte('\n')
		}
		return b.String()
	}

	reference := render(BatchOptions{BatchWorkers: 1, NoPolicyCache: true})
	if len(reference) == 0 {
		t.Fatal("empty render")
	}
	if !strings.Contains(reference, "b vs c") {
		t.Fatal("expected the b-vs-c pair in the output")
	}
	for _, opts := range []BatchOptions{
		{BatchWorkers: 1},                               // cache on, sequential
		{BatchWorkers: 4},                               // cache on, one cache per worker
		{BatchWorkers: 8, NoPolicyCache: true},          // cache off, parallel
		{BatchWorkers: 2, Options: Options{Workers: 2}}, // inner parallelism disables the cache path
	} {
		if got := render(opts); got != reference {
			t.Fatalf("BatchWorkers=%d NoPolicyCache=%v: output diverges from cache-off sequential reference",
				opts.BatchWorkers, opts.NoPolicyCache)
		}
	}
}
