package campion

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/testnets"
)

// countEvents tallies journal events by type.
func countEvents(events []JournalEvent) map[string]int {
	n := map[string]int{}
	for _, e := range events {
		n[e.Type]++
	}
	return n
}

// TestDiffFleetJournal runs a cold and a warm fleet audit with the
// flight recorder attached and checks that the journal tells the whole
// story: every phase bracketed, every device hashed, every class and
// representative pair recorded, cache traffic attributed, and the
// end-of-run metrics consistency check all-ok. The journal must then
// replay deterministically through the report analyzer and export as
// valid Chrome trace JSON.
func TestDiffFleetJournal(t *testing.T) {
	members := testnets.Fleet(testnets.FleetParams{Devices: 12, Templates: 3, MutationRate: 0.2, Seed: 7})
	cfgs := fleetConfigs(t, members)
	texts := map[string]string{}
	for _, m := range members {
		texts[m.Name] = m.Text
	}
	dir := t.TempDir()

	mkDevices := func(preparsed bool) []FleetDevice {
		devs := make([]FleetDevice, len(cfgs))
		for i, c := range cfgs {
			d := FleetDevice{Name: c.Name, ContentSum: ContentSum([]byte(texts[c.Name]))}
			if preparsed {
				d.Config = c.Config
			} else {
				name, text := c.Name, texts[c.Name]
				d.Load = func() (*Config, error) { return Parse(name+".cfg", text) }
			}
			devs[i] = d
		}
		return devs
	}

	run := func(preparsed bool) ([]JournalEvent, *FleetResult) {
		t.Helper()
		var buf bytes.Buffer
		j := NewJournal(&buf)
		opts := FleetOptions{CacheDir: dir}
		opts.Journal = j
		opts.Metrics = NewMetrics()
		opts.BatchWorkers = 2
		fr, err := DiffFleet(context.Background(), mkDevices(preparsed), opts)
		if err != nil {
			t.Fatalf("DiffFleet: %v", err)
		}
		if err := j.Err(); err != nil {
			t.Fatalf("journal degraded: %v", err)
		}
		events, err := ReadJournal(&buf)
		if err != nil {
			t.Fatalf("ReadJournal: %v", err)
		}
		return events, fr
	}

	cold, fr := run(true)

	// Sequence numbers are strictly increasing and offsets monotonic:
	// replay order is file order.
	for i, e := range cold {
		if e.Seq != int64(i+1) {
			t.Fatalf("event %d carries seq %d", i, e.Seq)
		}
		if i > 0 && e.T < cold[i-1].T {
			t.Fatalf("timestamps went backwards at seq %d", e.Seq)
		}
	}

	n := countEvents(cold)
	if n["hash"] != len(cfgs) {
		t.Fatalf("hash events = %d, want %d", n["hash"], len(cfgs))
	}
	if n["cluster"] != 1 || n["class"] != fr.Stats.Classes {
		t.Fatalf("cluster/class events = %d/%d, want 1/%d", n["cluster"], n["class"], fr.Stats.Classes)
	}
	if n["pair"] != fr.Stats.RepComputed {
		t.Fatalf("pair events = %d, want RepComputed %d", n["pair"], fr.Stats.RepComputed)
	}
	if n["component"] == 0 {
		t.Fatal("no per-component events — core Options.Journal not threaded through the batch")
	}
	if n["metrics_check"] != 1 {
		t.Fatalf("metrics_check events = %d, want 1", n["metrics_check"])
	}

	// Phase brackets in pipeline order, starts matching ends.
	var started, ended []string
	for _, e := range cold {
		switch e.Type {
		case obs.EvPhaseStart:
			started = append(started, e.Phase)
		case obs.EvPhaseEnd:
			ended = append(ended, e.Phase)
		}
	}
	want := []string{"hash", "cluster", "rep-pairs"}
	if fmt.Sprint(started) != fmt.Sprint(want) || fmt.Sprint(ended) != fmt.Sprint(want) {
		t.Fatalf("phases started %v ended %v, want %v", started, ended, want)
	}

	var classTotal int64
	hitHash, missHash := 0, 0
	for _, e := range cold {
		switch e.Type {
		case obs.EvHash:
			if e.Kind != "dag" && e.Kind != "fallback" {
				t.Fatalf("cold hash kind %q for %s", e.Kind, e.Device)
			}
		case obs.EvCluster:
			if e.N != int64(fr.Stats.Classes) || e.Total != int64(len(cfgs)) {
				t.Fatalf("cluster event %+v", e)
			}
		case obs.EvClass:
			classTotal += e.N
			if e.Device == "" || e.Class == 0 {
				t.Fatalf("class event missing representative or index: %+v", e)
			}
		case obs.EvPair:
			if e.Op == "cached" {
				t.Fatalf("cold run served pair %s from cache", e.Pair)
			}
		case obs.EvComponent:
			if e.Pair == "" || e.Component == "" {
				t.Fatalf("component event unattributed: %+v", e)
			}
		case obs.EvCache:
			if e.Kind == "hash" {
				if e.Op == "hit" {
					hitHash++
				} else if e.Op == "miss" {
					missHash++
				}
			}
		case obs.EvCheck:
			for k, v := range e.Detail {
				if v != "ok" {
					t.Fatalf("metrics consistency %s: %s", k, v)
				}
			}
		}
	}
	if classTotal != int64(len(cfgs)) {
		t.Fatalf("class sizes sum to %d, want %d", classTotal, len(cfgs))
	}
	if hitHash != 0 || missHash != len(cfgs) {
		t.Fatalf("cold hash-cache traffic %d hits / %d misses, want 0/%d", hitHash, missHash, len(cfgs))
	}

	// Warm run: every device hash recalled (no parses), every
	// representative report served from the persistent store.
	warm, wfr := run(false)
	if wfr.Stats.ParsesAvoided != len(cfgs) || wfr.Stats.RepComputed != 0 {
		t.Fatalf("warm stats: %+v", wfr.Stats)
	}
	wn := countEvents(warm)
	if wn["parse"] != 0 {
		t.Fatalf("warm run parsed %d devices", wn["parse"])
	}
	cachedPairs := 0
	for _, e := range warm {
		if e.Type == obs.EvHash && e.Kind != "cached" {
			t.Fatalf("warm hash kind %q for %s", e.Kind, e.Device)
		}
		if e.Type == obs.EvPair {
			if e.Op != "cached" {
				t.Fatalf("warm run computed pair %s", e.Pair)
			}
			cachedPairs++
		}
		if e.Type == obs.EvCheck {
			for k, v := range e.Detail {
				if v != "ok" {
					t.Fatalf("warm metrics consistency %s: %s", k, v)
				}
			}
		}
	}
	if cachedPairs != wfr.Stats.RepPairs {
		t.Fatalf("warm cached pairs = %d, want RepPairs %d", cachedPairs, wfr.Stats.RepPairs)
	}

	// The journal replays into a deterministic report and a valid trace.
	a := obs.AnalyzeJournal(cold)
	if a.Truncated {
		t.Fatal("library-level journal misreported as truncated")
	}
	if a.Devices != int64(len(cfgs)) || a.Classes != int64(fr.Stats.Classes) {
		t.Fatalf("analysis clustering %d/%d, want %d/%d", a.Devices, a.Classes, len(cfgs), fr.Stats.Classes)
	}
	var r1, r2 bytes.Buffer
	if err := a.WriteText(&r1, 10); err != nil {
		t.Fatal(err)
	}
	if err := obs.AnalyzeJournal(cold).WriteText(&r2, 10); err != nil {
		t.Fatal(err)
	}
	if r1.String() != r2.String() {
		t.Fatal("report render is not deterministic")
	}
	var trace bytes.Buffer
	if err := obs.WriteJournalTrace(&trace, cold); err != nil {
		t.Fatal(err)
	}
	var traced []map[string]any
	if err := json.Unmarshal(trace.Bytes(), &traced); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(traced) == 0 {
		t.Fatal("trace export is empty")
	}
}

// scrape GETs a path off the test server and returns the body.
func scrape(t *testing.T, base, path string) string {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	return string(body)
}

// metricValue extracts an unlabeled counter/gauge sample from Prometheus
// text exposition; missing means zero (the instrument may not be
// registered yet).
func metricValue(t *testing.T, body, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, name+" ") {
			f := strings.Fields(line)
			v, err := strconv.ParseFloat(f[len(f)-1], 64)
			if err != nil {
				t.Fatalf("parse %s sample %q: %v", name, line, err)
			}
			return v
		}
	}
	return 0
}

// TestServeDuringConcurrentFleetRuns scrapes the obs server in the
// middle of two concurrent DiffFleet runs (satellite: live telemetry).
// Each run's last device blocks in its Load hook until released, pinning
// both runs mid-hash-phase deterministically — no sleeps — while the
// test asserts that /metrics already shows nonzero fleet counters, that
// repeated scrapes are monotonic, and that /runs serves untorn JSON with
// live phase labels. Run under -race this also exercises the
// incremental-publication path against concurrent scrapes.
func TestServeDuringConcurrentFleetRuns(t *testing.T) {
	members := testnets.Fleet(testnets.FleetParams{Devices: 8, Templates: 2, MutationRate: 0.2, Seed: 3})
	cfgs := fleetConfigs(t, members)

	reg := NewMetrics()
	runs := NewRunLog(8)
	srv := httptest.NewServer((&obs.Server{Registry: reg, Runs: runs}).Handler())
	defer srv.Close()

	const runners = 2
	started := make(chan struct{}, runners)
	release := make(chan struct{})
	mkDevices := func() []FleetDevice {
		devs := make([]FleetDevice, len(cfgs))
		for i, c := range cfgs {
			cfg, last := c.Config, i == len(cfgs)-1
			devs[i] = FleetDevice{Name: c.Name, Load: func() (*Config, error) {
				if last {
					started <- struct{}{}
					<-release
				}
				return cfg, nil
			}}
		}
		return devs
	}

	var wg sync.WaitGroup
	errs := make([]error, runners)
	for g := 0; g < runners; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			opts := FleetOptions{}
			opts.Metrics = reg
			opts.RunLog = runs
			opts.Workers = 2
			opts.BatchWorkers = 2
			_, errs[g] = DiffFleet(context.Background(), mkDevices(), opts)
		}(g)
	}

	// Both runs are now stuck hashing their final device: mid-run by
	// construction.
	for g := 0; g < runners; g++ {
		select {
		case <-started:
		case <-time.After(30 * time.Second):
			t.Fatal("fleet runs never reached the blocking device")
		}
	}

	mid := scrape(t, srv.URL, "/metrics")
	hashed := metricValue(t, mid, "campion_fleet_devices_hashed_total")
	if hashed == 0 {
		t.Fatal("mid-run scrape shows zero devices hashed — counters still flushed at end of run")
	}
	if active := metricValue(t, mid, "campion_fleet_runs_active"); active != runners {
		t.Fatalf("campion_fleet_runs_active = %v mid-run, want %d", active, runners)
	}
	var midRuns []obs.RunSummary
	if err := json.Unmarshal([]byte(scrape(t, srv.URL, "/runs")), &midRuns); err != nil {
		t.Fatalf("torn /runs JSON mid-run: %v", err)
	}
	fleetRuns := 0
	for _, r := range midRuns {
		if !strings.HasPrefix(r.Name, "fleet (") {
			continue
		}
		fleetRuns++
		if r.Done {
			t.Fatalf("run %q done mid-run", r.Name)
		}
		if r.Phase != "hash" {
			t.Fatalf("run %q in phase %q while hashing is blocked", r.Name, r.Phase)
		}
		if r.Completed < 0 || r.Completed > int64(r.Pairs) {
			t.Fatalf("torn run entry: %+v", r)
		}
	}
	if fleetRuns != runners {
		t.Fatalf("/runs lists %d live fleet runs, want %d", fleetRuns, runners)
	}

	// Counters never go backwards across scrapes.
	if again := metricValue(t, scrape(t, srv.URL, "/metrics"), "campion_fleet_devices_hashed_total"); again < hashed {
		t.Fatalf("campion_fleet_devices_hashed_total went backwards: %v -> %v", hashed, again)
	}

	close(release)
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("fleet run %d: %v", g, err)
		}
	}

	final := scrape(t, srv.URL, "/metrics")
	if got := metricValue(t, final, "campion_fleet_devices_hashed_total"); got != float64(runners*len(cfgs)) {
		t.Fatalf("final devices hashed = %v, want %d", got, runners*len(cfgs))
	}
	if got := metricValue(t, final, "campion_fleet_runs_active"); got != 0 {
		t.Fatalf("campion_fleet_runs_active = %v after completion", got)
	}
	if got := metricValue(t, final, "campion_fleet_runs_total"); got != runners {
		t.Fatalf("campion_fleet_runs_total = %v, want %d", got, runners)
	}
	var finalRuns []obs.RunSummary
	if err := json.Unmarshal([]byte(scrape(t, srv.URL, "/runs")), &finalRuns); err != nil {
		t.Fatalf("torn /runs JSON after completion: %v", err)
	}
	for _, r := range finalRuns {
		if !strings.HasPrefix(r.Name, "fleet (") {
			continue
		}
		if !r.Done || r.Completed != int64(r.Pairs) {
			t.Fatalf("finished run entry %+v", r)
		}
	}
}
