package campion

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/obs"
)

// ConfigPair is one named pair of parsed configurations in a batch.
type ConfigPair struct {
	Name             string
	Config1, Config2 *Config
}

// NamedConfig attaches a display name (typically the file or host name)
// to a parsed configuration, for the all-pairs workloads.
type NamedConfig struct {
	Name   string
	Config *Config
}

// BatchOptions configures a DiffBatch / DiffAll run.
type BatchOptions struct {
	// Options configures each individual comparison. When Workers is 0
	// (the default), each pair is compared sequentially and the batch
	// fans out across pairs instead — the right default, since pair-level
	// parallelism has no synchronization points at all. Set
	// Options.Workers explicitly to also parallelize inside each pair.
	Options
	// BatchWorkers bounds how many pairs are compared concurrently;
	// 0 means one per CPU.
	BatchWorkers int
	// NoPolicyCache disables the per-worker compiled-policy cache that
	// DiffBatch installs for sequential inner comparisons. With the cache
	// each batch worker re-encodes a device's route maps once across all
	// the pairs it is assigned instead of once per pair; reports are
	// byte-identical either way. The switch exists for benchmarking and
	// the determinism tests.
	NoPolicyCache bool
	// RunLog, when non-nil, records this batch as one run — pair counts,
	// differences, and errors update live, so `campion -serve`'s /runs
	// endpoint can watch a long audit progress.
	RunLog *obs.RunLog
	// RunName labels the run in the RunLog (default "batch").
	RunName string
	// CacheDir, when non-empty, persists finished pair reports (keyed by
	// the two devices' semantic hashes and an options fingerprint) under
	// this directory, so repeated audits skip unchanged comparisons
	// across process restarts. DiffAll additionally clusters devices by
	// semantic hash and diffs only class representatives (see DiffFleet).
	// Reports are byte-identical with and without a cache.
	CacheDir string
	// OnResult, when non-nil, is invoked once per pair the moment its
	// result lands — from whichever batch worker finished it (or from the
	// feeder, for pairs marked canceled before dispatch), so it must be
	// safe for concurrent use. i is the pair's input index. The fleet
	// engine uses it to advance live progress as representative pairs
	// resolve; the slice returned by DiffBatch is unaffected.
	OnResult func(i int, res BatchResult)
}

// BatchResult is the outcome of one pair in a batch: either a report or
// a per-pair error. Errors are isolated — one failing pair never aborts
// the others. Err, when non-nil, is a *PairError; classify it with
// errors.Is against ErrParse / ErrCanceled / ErrBudget / ErrInternal,
// or label it with ErrKind.
type BatchResult struct {
	Name   string
	Report *Report
	Err    error
}

// batchCtxErr mirrors core's deadline-aware context check: a deadline
// that has already passed counts as exceeded even before the context's
// timer fires, so tiny -timeout values behave deterministically.
func batchCtxErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d, ok := ctx.Deadline(); ok && !time.Now().Before(d) {
		return context.DeadlineExceeded
	}
	return nil
}

// pairError wraps a cause as this pair's structured failure, unless it
// already is one (core's guarded workers hand back *PairError with
// file/line provenance — keep those intact).
func pairError(name string, kind, cause error) error {
	var pe *PairError
	if errors.As(cause, &pe) {
		return cause
	}
	return &PairError{Pair: name, Kind: kind, Err: cause}
}

// DiffBatch compares every configuration pair on a bounded worker pool
// and returns the results in input order, regardless of completion order.
//
// Each pair is an independent comparison with its own symbolic state, so
// pairs scale linearly with cores. The context is threaded into every
// comparison (polled from inside the BDD kernels), so cancellation both
// skips unstarted pairs and interrupts in-flight ones; all affected
// pairs carry an ErrCanceled *PairError and DiffBatch returns ctx's
// error alongside the partial results. Per-pair failures — parse,
// cancellation, budget (Options.MaxNodes / Options.Timeout), or an
// isolated crash — land in the pair's BatchResult as *PairError, never
// abort the batch, and leave the returned error nil.
func DiffBatch(ctx context.Context, pairs []ConfigPair, opts BatchOptions) ([]BatchResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]BatchResult, len(pairs))
	workers := opts.BatchWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pairs) {
		workers = len(pairs)
	}
	if len(pairs) == 0 {
		return results, ctx.Err()
	}
	inner := opts.Options
	if inner.Workers == 0 {
		// Don't oversubscribe: batch-level fan-out already saturates the
		// CPUs, so each pair runs sequentially unless asked otherwise.
		inner.Workers = 1
	}
	// A PolicyCache is single-goroutine state; a caller-supplied one
	// cannot be shared across batch workers, so it is replaced by one
	// private cache per worker below.
	inner.PolicyCache = nil

	// Persistent report cache: hash each distinct config once (memoized
	// by pointer — parsed configs are immutable), then serve finished
	// reports from disk and store fresh ones back.
	var fstore *fleet.Store
	var optsFP string
	var hashMemo sync.Map // *ir.Config -> string
	if opts.CacheDir != "" {
		var err error
		if fstore, err = fleet.OpenStore(opts.CacheDir); err != nil {
			return nil, err
		}
		optsFP = fleet.OptionsFingerprint(inner)
	}

	runName := opts.RunName
	if runName == "" {
		runName = "batch"
	}
	run := opts.RunLog.Start(runName, len(pairs))
	defer run.Finish()
	var bsp *obs.Span
	if inner.TraceParent != nil {
		bsp = inner.TraceParent.Child("batch", obs.Int("pairs", len(pairs)))
	} else if inner.Tracer != nil {
		bsp = inner.Tracer.Root("batch",
			obs.Str("name", runName), obs.Int("pairs", len(pairs)), obs.Int("workers", workers))
	}
	defer bsp.End()
	var pairLatency *obs.Histogram
	var pairsDone *obs.Counter
	if inner.Metrics != nil {
		pairLatency = inner.Metrics.Histogram("campion_pair_duration_nanoseconds",
			"wall time of one pair comparison in a batch")
		pairsDone = inner.Metrics.Counter("campion_pairs_total", "pair comparisons completed")
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			inner := inner
			if inner.Workers == 1 && !opts.NoPolicyCache {
				inner.PolicyCache = core.NewPolicyCache()
			}
			var hasher *fleet.Hasher
			hashFor := func(cfg *Config) string {
				if h, ok := hashMemo.Load(cfg); ok {
					return h.(string)
				}
				if hasher == nil {
					hasher = fleet.NewHasher()
				}
				h, _ := hasher.DeviceHash(cfg)
				actual, _ := hashMemo.LoadOrStore(cfg, h)
				return actual.(string)
			}
			var wsp *obs.Span
			if bsp != nil {
				wsp = bsp.Child("worker", obs.Int("worker", w))
			}
			var wait, busy time.Duration
			mark := time.Now()
			for i := range jobs {
				start := time.Now()
				wait += start.Sub(mark)
				p := pairs[i]
				res := BatchResult{Name: p.Name}
				var psp *obs.Span
				if wsp != nil {
					psp = wsp.Child("pair", obs.Str("pair", p.Name))
				}
				inner := inner
				inner.TraceParent = psp
				inner.JournalPair = p.Name
				served := false
				switch {
				case batchCtxErr(ctx) != nil:
					res.Err = pairError(p.Name, ErrCanceled, batchCtxErr(ctx))
				case p.Config1 == nil || p.Config2 == nil:
					res.Err = &PairError{Pair: p.Name, Kind: ErrParse,
						Err: fmt.Errorf("missing configuration")}
				default:
					var h1, h2 string
					if fstore != nil {
						h1, h2 = hashFor(p.Config1), hashFor(p.Config2)
						if rep, ok := fstore.GetReport(h1, h2, optsFP); ok {
							res.Report = fleet.RespanReport(rep, p.Config1, p.Config2)
							served = true
						}
					}
					if !served {
						res.Report, res.Err = DiffContext(ctx, p.Config1, p.Config2, inner)
						if fstore != nil && res.Err == nil {
							fstore.PutReport(h1, h2, optsFP, res.Report)
						}
					}
				}
				results[i] = res
				diffs := 0
				var nodes int64
				if res.Report != nil {
					diffs = res.Report.TotalDifferences()
					for _, st := range res.Report.Stats {
						nodes += int64(st.BDDNodes)
					}
				}
				kind := ErrKind(res.Err)
				if psp != nil {
					psp.SetAttrs(obs.Int("diffs", diffs))
					if kind != "" {
						psp.SetAttrs(obs.Str("error", kind))
					}
					psp.End()
				}
				run.PairDone(diffs, res.Err != nil)
				if res.Err != nil {
					run.PairFailed(kind)
				}
				mark = time.Now()
				pe := obs.Event{Type: obs.EvPair, Pair: p.Name,
					Dur: int64(mark.Sub(start)), Diffs: diffs, Nodes: nodes, Err: kind}
				if served {
					pe.Op = "cached"
				}
				inner.Journal.Emit(pe)
				if opts.OnResult != nil {
					opts.OnResult(i, res)
				}
				busy += mark.Sub(start)
				pairLatency.Observe(int64(mark.Sub(start)))
				pairsDone.Inc()
				if res.Err != nil && inner.Metrics != nil {
					inner.Metrics.Counter("campion_pair_errors_total",
						"pair comparisons that errored, by failure kind",
						obs.L("kind", kind)).Inc()
				}
			}
			wait += time.Since(mark)
			if wsp != nil {
				wsp.SetAttrs(obs.Dur("queueWait", wait), obs.Dur("compute", busy))
				wsp.End()
			}
			if inner.Metrics != nil {
				pool := obs.L("pool", "batch")
				inner.Metrics.Counter(core.MetricWorkerWait,
					"time workers spent blocked on the job queue", pool).Add(uint64(wait))
				inner.Metrics.Counter(core.MetricWorkerBusy,
					"time workers spent computing", pool).Add(uint64(busy))
			}
		}(w)
	}
feed:
	for i := range pairs {
		select {
		case jobs <- i:
		case <-ctx.Done():
			// Mark everything not yet handed out; the workers drain the
			// closed channel below. Kind bookkeeping matches the worker
			// path so the run summary counts these pairs too.
			for j := i; j < len(pairs); j++ {
				results[j] = BatchResult{Name: pairs[j].Name,
					Err: pairError(pairs[j].Name, ErrCanceled, ctx.Err())}
				run.PairDone(0, true)
				run.PairFailed("canceled")
				inner.Journal.Emit(obs.Event{Type: obs.EvPair,
					Pair: pairs[j].Name, Err: "canceled"})
				if opts.OnResult != nil {
					opts.OnResult(j, results[j])
				}
			}
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	return results, batchCtxErr(ctx)
}

// DiffAll compares every unordered pair of the given configurations —
// the fleet-audit workload ("are any two of these routers configured
// differently?"). Pair i<j is named "NameI vs NameJ"; results arrive in
// lexicographic (i, j) order. It is DiffBatch over the n·(n−1)/2 pairs.
//
// With CacheDir set, DiffAll routes through DiffFleet: devices are
// clustered by semantic hash, only class representatives are diffed
// (with persisted reports reused across runs), and the results are
// expanded back to every pair — byte-identical to the naive path.
func DiffAll(ctx context.Context, cfgs []NamedConfig, opts BatchOptions) ([]BatchResult, error) {
	if opts.CacheDir != "" {
		devices := make([]FleetDevice, len(cfgs))
		for i, c := range cfgs {
			devices[i] = FleetDevice{Name: c.Name, Config: c.Config}
		}
		fr, err := DiffFleet(ctx, devices, FleetOptions{
			BatchOptions: opts, CacheDir: opts.CacheDir,
		})
		if fr == nil {
			return nil, err
		}
		return fr.Results(), err
	}
	var pairs []ConfigPair
	for i := 0; i < len(cfgs); i++ {
		for j := i + 1; j < len(cfgs); j++ {
			pairs = append(pairs, ConfigPair{
				Name:    fmt.Sprintf("%s vs %s", cfgs[i].Name, cfgs[j].Name),
				Config1: cfgs[i].Config,
				Config2: cfgs[j].Config,
			})
		}
	}
	if opts.RunName == "" {
		opts.RunName = fmt.Sprintf("all-pairs (%d configs)", len(cfgs))
	}
	return DiffBatch(ctx, pairs, opts)
}
