package campion

import (
	"os"
	"path/filepath"
	"testing"
)

func TestPairFilesAndDiffDirs(t *testing.T) {
	dir1, dir2 := t.TempDir(), t.TempDir()
	write := func(dir, name, text string) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(text), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(dir1, "tor1.cfg", ciscoText)
	write(dir2, "tor1.conf", juniperText)
	write(dir1, "lonely.cfg", ciscoText)
	write(dir2, "other.cfg", juniperText)
	if err := os.Mkdir(filepath.Join(dir1, "subdir"), 0o755); err != nil {
		t.Fatal(err)
	}

	pairs, only1, only2, err := PairFiles(dir1, dir2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 || pairs[0].Name != "tor1" {
		t.Fatalf("pairs = %+v", pairs)
	}
	if len(only1) != 1 || len(only2) != 1 {
		t.Errorf("unmatched = %v / %v", only1, only2)
	}

	results, err := DiffDirs(dir1, dir2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	var matched, errored int
	for _, r := range results {
		if r.Err != nil {
			errored++
		} else {
			matched++
			if r.Report == nil {
				t.Error("matched pair should carry a report")
			}
		}
	}
	if matched != 1 || errored != 2 {
		t.Errorf("matched=%d errored=%d", matched, errored)
	}
	if _, _, _, err := PairFiles("/nonexistent", dir2); err == nil {
		t.Error("missing directory should error")
	}
	if _, err := DiffDirs(dir1, "/nonexistent", Options{}); err == nil {
		t.Error("missing directory should error")
	}
}

func TestDiffDirsUnparseablePair(t *testing.T) {
	dir1, dir2 := t.TempDir(), t.TempDir()
	if err := os.WriteFile(filepath.Join(dir1, "r.cfg"), []byte("complete gibberish"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir2, "r.cfg"), []byte(juniperText), 0o644); err != nil {
		t.Fatal(err)
	}
	results, err := DiffDirs(dir1, dir2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Err == nil {
		t.Errorf("unparseable side should yield a per-pair error: %+v", results)
	}
}
