package campion

import (
	"context"

	"repro/internal/repair"
)

// Repair-related aliases: the repair search is implemented in
// internal/repair; these give external callers the same one-stop surface
// the diff engine has.
type (
	// RepairOptions tunes the repair search (edit budget, candidate
	// budget, sampling, kernel modes, observability sinks).
	RepairOptions = repair.Options
	// RepairResult is the outcome of one Repair call: per-pair outcomes,
	// and the fully patched config when every differing pair repaired.
	RepairResult = repair.Result
	// RepairPair is the per-policy-pair repair outcome.
	RepairPair = repair.PairRepair
	// RepairCandidate is one evaluated edit sequence with its score.
	RepairCandidate = repair.Candidate
	// RepairEdit is a single IR-level edit of a candidate repair.
	RepairEdit = repair.Edit
	// RepairPatch is the rendered text patch for config B.
	RepairPatch = repair.TextPatch
)

// Repair searches for minimal oracle-validated edits to cfg2 that make
// every matched policy pair behaviorally equivalent to cfg1. See
// internal/repair for the search and acceptance semantics.
func Repair(ctx context.Context, cfg1, cfg2 *Config, opts RepairOptions) (*RepairResult, error) {
	return repair.Run(ctx, cfg1, cfg2, opts)
}

// RepairVerify re-parses patched config-B text and confirms the result
// is equivalent to cfg1 under both the symbolic engine and the concrete
// oracle — the final gate a rendered patch must pass.
func RepairVerify(cfg1 *Config, vendor Vendor, file, text string, opts RepairOptions) (*Config, error) {
	return repair.ReparseVerify(cfg1, vendor, file, text, opts)
}
