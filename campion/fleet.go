package campion

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/ir"
	"repro/internal/obs"
)

// FleetStore is the persistent cache under a -cache-dir: device-hash
// entries (skip re-parsing unchanged files) and finished pair reports
// keyed by (hashA, hashB, options fingerprint). Safe for concurrent use
// by goroutines and by separate processes sharing the directory
// (last-writer-wins; see internal/fleet).
type FleetStore = fleet.Store

// OpenFleetStore opens (creating if needed) a persistent cache.
func OpenFleetStore(dir string) (*FleetStore, error) { return fleet.OpenStore(dir) }

// OpenMemFleetStore returns a cache with no backing directory: entries
// live in memory and die with the process. It is what a long-lived
// daemon wants when the operator has not asked for cross-restart
// persistence — every audit after the first is served from RAM. For a
// disk-backed store with the same hot-path behavior, open it with
// OpenFleetStore and call EnableMemo.
func OpenMemFleetStore() *FleetStore { return fleet.OpenMemStore() }

// ContentSum fingerprints raw configuration bytes for FleetDevice:
// supplying it lets cached hash entries stand in for parsing entirely.
func ContentSum(data []byte) string { return fleet.ContentSum(data) }

// FleetDevice is one device of a fleet audit. Exactly one of Config or
// Load supplies the parsed configuration; Load lets warm cache runs skip
// parsing entirely when ContentSum finds a stored hash entry.
type FleetDevice struct {
	// Name labels the device in pair names ("Name1 vs Name2").
	Name string
	// Config is the parsed configuration, when the caller already has it.
	Config *Config
	// Load parses the configuration on demand. It is called at most once
	// per DiffFleet run, and only when the device's semantic hash is not
	// already known (cold cache, or the device is a class representative
	// that must actually be diffed).
	Load func() (*Config, error)
	// ContentSum, when set, is fleet.ContentSum of the raw configuration
	// bytes; with a cache it keys the persisted hash entry.
	ContentSum string
	// Hash, when set, is a precomputed semantic hash (skips hashing).
	Hash string
	// Hostname and File override the rendering identity when the
	// configuration itself is never loaded (warm cache). They are filled
	// from the configuration or the cache when left empty.
	Hostname string
	File     string
}

// FleetOptions configures a DiffFleet run.
type FleetOptions struct {
	BatchOptions
	// CacheDir, when non-empty, persists device hashes and pair reports
	// across runs. Store may be supplied instead to share an open store.
	CacheDir string
	// Store is an already-open persistent cache; takes precedence over
	// CacheDir.
	Store *FleetStore
	// Paranoid additionally verifies every non-representative class
	// member against its representative with a full diff — a hash
	// collision check. It re-parses every device, so it forfeits the
	// warm-cache parse savings by design.
	Paranoid bool
	// NoCluster disables semantic clustering: every device is its own
	// class, so all pairs are diffed (the persistent report cache still
	// applies). For measurement and debugging.
	NoCluster bool
	// MaxCachedReports bounds the persistent report entries kept on
	// disk; 0 means unlimited.
	MaxCachedReports int
}

// FleetClass is one semantic equivalence class: devices whose
// configurations are interchangeable in any comparison (equal semantic
// hashes). Members are device indices in ascending order; Members[0] is
// the class representative.
type FleetClass struct {
	Hash    string
	Members []int
}

// FleetStats summarizes what a DiffFleet run actually did.
type FleetStats struct {
	// Devices is the fleet size; Failed counts devices whose
	// configurations could not be loaded or hashed.
	Devices, Failed int
	// Classes is the number of semantic equivalence classes among the
	// live devices.
	Classes int
	// RepPairs is the number of ordered class-representative pairs the
	// run needed; RepComputed of those were actually diffed (the rest
	// came from the persistent cache).
	RepPairs, RepComputed int
	// ExpandedPairs is the number of member pairs the results cover —
	// the naive all-pairs count.
	ExpandedPairs int
	// ParsesAvoided counts devices whose parse was skipped because a
	// cached hash entry matched their raw bytes; HashFallbacks counts
	// devices hashed with the intensional fallback.
	ParsesAvoided, HashFallbacks int
	// Cache is the persistent store's counter snapshot (zero without a
	// cache).
	Cache fleet.StoreStats
}

// FleetResult holds a finished fleet audit: the classes, the
// representative reports, and the machinery to expand them to all member
// pairs on demand — materializing half a million BatchResults up front
// would defeat the point at fleet scale.
type FleetResult struct {
	Devices []FleetDevice
	Classes []FleetClass
	Stats   FleetStats

	// DeviceErrs[i] is non-nil when device i failed to load or hash;
	// its pairs expand to ErrParse results.
	DeviceErrs []error

	classOf  []int // device index -> class index; -1 for failed devices
	render   []*ir.Config
	repRep   map[[2]int]*core.Report // ordered class pair -> report
	repErr   map[[2]int]error
	liveSize int
}

// DiffFleet audits a fleet: hash every device, cluster by semantic hash,
// diff only class representatives (reusing persisted reports when a
// cache is configured), and expose the results expanded to every member
// pair — byte-identical to running DiffAll naively over the whole fleet.
//
// Per-pair failures land in the expanded results as *PairError, exactly
// as with DiffBatch; the returned error is non-nil only for setup
// failures (unusable cache directory), context cancellation, or a
// Paranoid-mode hash-collision detection.
func DiffFleet(ctx context.Context, devices []FleetDevice, opts FleetOptions) (*FleetResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	store := opts.Store
	if store == nil && opts.CacheDir != "" {
		var err error
		if store, err = fleet.OpenStore(opts.CacheDir); err != nil {
			return nil, err
		}
	}
	if store != nil && opts.MaxCachedReports > 0 {
		store.SetMaxReports(opts.MaxCachedReports)
	}
	// A shared Store accumulates counters across runs; report this run's
	// activity as a delta against its state at entry.
	var statsBefore fleet.StoreStats
	if store != nil {
		statsBefore = store.Stats()
	}

	r := &FleetResult{
		Devices:    append([]FleetDevice(nil), devices...),
		DeviceErrs: make([]error, len(devices)),
		classOf:    make([]int, len(devices)),
		render:     make([]*ir.Config, len(devices)),
		repRep:     map[[2]int]*core.Report{},
		repErr:     map[[2]int]error{},
	}
	r.Stats.Devices = len(devices)

	// Live publication: instruments resolved once, advanced atomically as
	// each phase progresses, so mid-run /metrics scrapes are meaningful.
	fm := newFleetMetrics(opts, opts.Journal)
	fm.runsActive.Add(1)
	defer fm.runsActive.Add(-1)
	fm.devices.Set(int64(len(devices)))
	if store != nil {
		store.SetObserver(fm.cacheEvent)
		defer store.SetObserver(nil)
	}

	// The fleet-level run entry covers every member pair; coverage is
	// credited in blocks as clustering and representative pairs resolve,
	// so /runs shows live progress against the naive all-pairs total.
	frun := opts.RunLog.Start(fmt.Sprintf("fleet (%d devices)", len(devices)),
		len(devices)*(len(devices)-1)/2)
	defer frun.Finish()

	var fsp *obs.Span
	if opts.TraceParent != nil {
		fsp = opts.TraceParent.Child("fleet", obs.Int("devices", len(devices)))
	} else if opts.Tracer != nil {
		fsp = opts.Tracer.Root("fleet", obs.Int("devices", len(devices)))
	}
	defer fsp.End()

	phase := func(name string, total int64, sp **obs.Span) time.Time {
		frun.SetPhase(name)
		*sp = fsp.Child(name)
		opts.Journal.Emit(obs.Event{Type: obs.EvPhaseStart, Phase: name, Total: total})
		return time.Now()
	}
	endPhase := func(name string, start time.Time, sp *obs.Span, n int64) {
		sp.End()
		opts.Journal.Emit(obs.Event{Type: obs.EvPhaseEnd, Phase: name,
			Dur: int64(time.Since(start)), N: n})
	}

	var sp *obs.Span
	t := phase("hash", int64(len(devices)), &sp)
	resolveDevices(ctx, r, store, &opts, fm)
	sp.SetAttrs(obs.Int("failed", r.Stats.Failed), obs.Int("parsesAvoided", r.Stats.ParsesAvoided))
	endPhase("hash", t, sp, int64(len(devices)))

	t = phase("cluster", 0, &sp)
	cluster(r, opts.NoCluster)
	fm.classes.Set(int64(r.Stats.Classes))
	opts.Journal.Emit(obs.Event{Type: obs.EvCluster,
		N: int64(r.Stats.Classes), Total: int64(r.liveSize)})
	for ci, cl := range r.Classes {
		opts.Journal.Emit(obs.Event{Type: obs.EvClass, Class: ci + 1,
			Device: r.Devices[cl.Members[0]].Name, N: int64(len(cl.Members))})
	}
	// Clustering already settles two blocks of member-pair coverage:
	// same-class pairs (equivalent by construction) and pairs touching a
	// failed device (they expand to that device's error).
	var same int64
	for _, cl := range r.Classes {
		m := int64(len(cl.Members))
		same += m * (m - 1) / 2
	}
	n, live := int64(len(r.Devices)), int64(r.liveSize)
	failedPairs := n*(n-1)/2 - live*(live-1)/2
	frun.Advance(same, 0, 0)
	frun.Advance(failedPairs, 0, failedPairs)
	sp.SetAttrs(obs.Int("classes", r.Stats.Classes))
	endPhase("cluster", t, sp, int64(r.Stats.Classes))

	optsFP := fleet.OptionsFingerprint(opts.Options)
	t = phase("rep-pairs", 0, &sp)
	err := diffRepresentatives(ctx, r, store, opts, optsFP, fm, frun, sp)
	endPhase("rep-pairs", t, sp, int64(r.Stats.RepPairs))
	if err != nil {
		// Setup failure or cancellation: the incrementally published
		// counters stand as-is (matching the old behavior of not flushing),
		// and the journal keeps everything up to the failing phase.
		return r, err
	}

	var collision string
	if opts.Paranoid {
		t = phase("paranoid", 0, &sp)
		collision, err = verifyParanoid(ctx, r, opts, sp)
		endPhase("paranoid", t, sp, 0)
	}

	if store != nil {
		store.EvictNow()
		after := store.Stats()
		r.Stats.Cache = fleet.StoreStats{
			ReportHits:   after.ReportHits - statsBefore.ReportHits,
			ReportMisses: after.ReportMisses - statsBefore.ReportMisses,
			HashHits:     after.HashHits - statsBefore.HashHits,
			HashMisses:   after.HashMisses - statsBefore.HashMisses,
			Evictions:    after.Evictions - statsBefore.Evictions,
			Corrupt:      after.Corrupt - statsBefore.Corrupt,
		}
	}
	fm.finish(r)
	if err != nil {
		return r, err
	}
	if collision != "" {
		return r, fmt.Errorf("paranoid verification failed: %s (semantic hash collision or hasher bug)", collision)
	}
	return r, batchCtxErr(ctx)
}

// resolveDevices fills in each device's semantic hash, hostname, and
// rendering identity — from the caller, the persistent cache, or by
// loading and hashing the configuration. Runs on a worker pool; each
// worker owns a private Hasher.
func resolveDevices(ctx context.Context, r *FleetResult, store *fleet.Store, opts *FleetOptions, fm *fleetMetrics) {
	workers := opts.BatchWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(r.Devices) {
		workers = len(r.Devices)
	}
	if workers < 1 {
		workers = 1
	}
	var mu sync.Mutex // guards the shared Stats fields
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var hasher *fleet.Hasher
			for i := range jobs {
				d := &r.Devices[i]
				if batchCtxErr(ctx) != nil {
					r.DeviceErrs[i] = pairError(d.Name, ErrCanceled, batchCtxErr(ctx))
					continue
				}
				start := time.Now()
				// kind records how the hash was obtained, for the journal:
				// given by the caller, recalled from the cache, or computed
				// (dag, or the intensional fallback).
				kind := "given"
				// Cheapest first: caller-supplied hash, then the
				// persisted hash for these exact raw bytes, then load
				// and hash for real.
				if d.Hash == "" && store != nil && d.ContentSum != "" {
					if e, ok := store.GetHash(d.ContentSum); ok {
						d.Hash = e.Hash
						kind = "cached"
						if d.Hostname == "" {
							d.Hostname = e.Hostname
						}
						if d.Config == nil {
							mu.Lock()
							r.Stats.ParsesAvoided++
							mu.Unlock()
							fm.parseDedup.Inc()
							fm.pubDedup.Add(1)
						}
					}
				}
				if d.Hash == "" {
					parsed := d.Config == nil
					pstart := time.Now()
					cfg, err := materialize(d)
					if parsed || err != nil {
						pe := obs.Event{Type: obs.EvParse, Device: d.Name,
							Dur: int64(time.Since(pstart))}
						if err != nil {
							pe.Err = "parse"
						}
						fm.journal.Emit(pe)
					}
					if err != nil {
						r.DeviceErrs[i] = pairError(d.Name, ErrParse, err)
						continue
					}
					if hasher == nil {
						hasher = fleet.NewHasher()
					}
					hash, fallback := hasher.DeviceHash(cfg)
					d.Hash = hash
					kind = "dag"
					if fallback {
						kind = "fallback"
						mu.Lock()
						r.Stats.HashFallbacks++
						mu.Unlock()
						fm.fallbacks.Inc()
						fm.pubFallbacks.Add(1)
					}
					if store != nil && d.ContentSum != "" {
						store.PutHash(d.ContentSum, hash, cfg.Hostname, fallback)
					}
				}
				fm.hashed.Inc()
				fm.journal.Emit(obs.Event{Type: obs.EvHash, Device: d.Name,
					Kind: kind, Dur: int64(time.Since(start))})
				if d.Config != nil {
					if d.Hostname == "" {
						d.Hostname = d.Config.Hostname
					}
					if d.File == "" {
						d.File = d.Config.File
					}
				}
				r.render[i] = renderConfig(d)
			}
		}()
	}
	for i := range r.Devices {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range r.DeviceErrs {
		if err != nil {
			r.Stats.Failed++
		}
	}
}

// materialize returns the device's parsed configuration, loading (once)
// if necessary.
func materialize(d *FleetDevice) (*Config, error) {
	if d.Config != nil {
		return d.Config, nil
	}
	if d.Load == nil {
		return nil, fmt.Errorf("missing configuration")
	}
	cfg, err := d.Load()
	if err != nil {
		return nil, err
	}
	if cfg == nil {
		return nil, fmt.Errorf("missing configuration")
	}
	d.Config = cfg
	return cfg, nil
}

// renderConfig is the configuration identity used when expanding reports
// for this device: the real parsed config when available, otherwise a
// stub carrying exactly what rendering reads (hostname and file).
func renderConfig(d *FleetDevice) *ir.Config {
	if d.Config != nil {
		return d.Config
	}
	return &ir.Config{Hostname: d.Hostname, File: d.File}
}

// cluster partitions the live devices into semantic classes in order of
// first appearance, so class numbering (and therefore everything
// downstream) is deterministic.
func cluster(r *FleetResult, noCluster bool) {
	byHash := map[string]int{}
	for i := range r.Devices {
		if r.DeviceErrs[i] != nil {
			r.classOf[i] = -1
			continue
		}
		r.liveSize++
		key := r.Devices[i].Hash
		if noCluster {
			key = fmt.Sprintf("device-%d", i)
		}
		ci, ok := byHash[key]
		if !ok {
			ci = len(r.Classes)
			byHash[key] = ci
			r.Classes = append(r.Classes, FleetClass{Hash: r.Devices[i].Hash})
		}
		r.Classes[ci].Members = append(r.Classes[ci].Members, i)
		r.classOf[i] = ci
	}
	r.Stats.Classes = len(r.Classes)
	r.Stats.ExpandedPairs = len(r.Devices) * (len(r.Devices) - 1) / 2
}

// neededOrientations lists the ordered class pairs some member pair
// (i < j) actually expands to. Reports are directional — config1 vs
// config2 — so a class pair may be needed in one or both orientations
// depending on how its members interleave: (a, b) is needed iff some
// member of a precedes some member of b.
func (r *FleetResult) neededOrientations() [][2]int {
	var out [][2]int
	for a := range r.Classes {
		for b := range r.Classes {
			if a == b {
				continue
			}
			ma, mb := r.Classes[a].Members, r.Classes[b].Members
			if ma[0] < mb[len(mb)-1] {
				out = append(out, [2]int{a, b})
			}
		}
	}
	return out
}

// diffRepresentatives resolves every needed ordered class pair: from the
// persistent cache when possible, otherwise by actually diffing the two
// class representatives on the batch worker pool. Each resolved
// orientation advances the fleet run's coverage by the member pairs it
// expands to, so /runs progresses as representatives finish, not at the
// end.
func diffRepresentatives(ctx context.Context, r *FleetResult, store *fleet.Store, opts FleetOptions, optsFP string, fm *fleetMetrics, frun *obs.Run, fsp *obs.Span) error {
	needed := r.neededOrientations()
	r.Stats.RepPairs = len(needed)
	fm.repPairs.Add(uint64(len(needed)))
	fm.pubRepPairs.Add(uint64(len(needed)))

	// covered advances the fleet run by every member pair orientation key
	// expands to.
	covered := func(key [2]int, diffs int, failed bool) {
		cnt := orientationCount(r.Classes[key[0]].Members, r.Classes[key[1]].Members)
		if failed {
			frun.Advance(cnt, 0, cnt)
			return
		}
		frun.Advance(cnt, int64(diffs)*cnt, 0)
	}

	var missing [][2]int
	for _, key := range needed {
		if store != nil {
			h1, h2 := r.Classes[key[0]].Hash, r.Classes[key[1]].Hash
			if rep, ok := store.GetReport(h1, h2, optsFP); ok {
				r.repRep[key] = rep
				diffs := rep.TotalDifferences()
				covered(key, diffs, false)
				i, j := r.Classes[key[0]].Members[0], r.Classes[key[1]].Members[0]
				fm.journal.Emit(obs.Event{Type: obs.EvPair,
					Pair:  r.Devices[i].Name + " vs " + r.Devices[j].Name,
					Op:    "cached",
					Diffs: diffs,
				})
				continue
			}
		}
		missing = append(missing, key)
	}
	r.Stats.RepComputed = len(missing)
	fm.repDiffed.Add(uint64(len(missing)))
	fm.pubRepDiffed.Add(uint64(len(missing)))
	if len(missing) == 0 {
		return nil
	}

	// The representatives of every miss must be real parsed configs now.
	pairs := make([]ConfigPair, len(missing))
	for n, key := range missing {
		i, j := r.Classes[key[0]].Members[0], r.Classes[key[1]].Members[0]
		di, dj := &r.Devices[i], &r.Devices[j]
		name := fmt.Sprintf("%s vs %s", di.Name, dj.Name)
		c1, err1 := materialize(di)
		c2, err2 := materialize(dj)
		switch {
		case err1 != nil:
			r.repErr[key] = pairError(di.Name, ErrParse, err1)
			covered(key, 0, true)
			continue
		case err2 != nil:
			r.repErr[key] = pairError(dj.Name, ErrParse, err2)
			covered(key, 0, true)
			continue
		}
		r.render[i], r.render[j] = c1, c2
		pairs[n] = ConfigPair{Name: name, Config1: c1, Config2: c2}
	}

	batch := opts.BatchOptions
	// The fleet layer already resolved the persistent cache for these
	// pairs; don't let the inner batch open a second store for them.
	batch.CacheDir = ""
	batch.TraceParent = fsp
	if batch.RunName == "" {
		batch.RunName = fmt.Sprintf("fleet rep-pairs (%d devices, %d classes)", len(r.Devices), len(r.Classes))
	}
	live := make([]ConfigPair, 0, len(pairs))
	liveKey := make([][2]int, 0, len(pairs))
	for n, p := range pairs {
		if p.Config1 != nil {
			live = append(live, p)
			liveKey = append(liveKey, missing[n])
		}
	}
	// Advance coverage from inside the batch, as each representative pair
	// resolves — this is what makes a long rep-pair phase watchable.
	// OnResult runs on batch workers concurrently; Advance is atomic.
	userOnResult := batch.OnResult
	batch.OnResult = func(n int, res BatchResult) {
		diffs := 0
		if res.Report != nil {
			diffs = res.Report.TotalDifferences()
		}
		covered(liveKey[n], diffs, res.Err != nil)
		if userOnResult != nil {
			userOnResult(n, res)
		}
	}
	results, err := DiffBatch(ctx, live, batch)
	for n, res := range results {
		key := liveKey[n]
		if res.Err != nil {
			r.repErr[key] = res.Err
			continue
		}
		r.repRep[key] = res.Report
		if store != nil {
			store.PutReport(r.Classes[key[0]].Hash, r.Classes[key[1]].Hash, optsFP, res.Report)
		}
	}
	return err
}

// verifyParanoid fully diffs every non-representative member against its
// class representative. Any difference means two configurations hashed
// equal but are not semantically identical — a collision (or a hasher
// bug) worth stopping the audit for.
func verifyParanoid(ctx context.Context, r *FleetResult, opts FleetOptions, fsp *obs.Span) (string, error) {
	if !opts.Paranoid {
		return "", nil
	}
	var pairs []ConfigPair
	for _, cl := range r.Classes {
		rep := cl.Members[0]
		c1, err := materialize(&r.Devices[rep])
		if err != nil {
			continue
		}
		for _, m := range cl.Members[1:] {
			c2, err := materialize(&r.Devices[m])
			if err != nil {
				continue
			}
			pairs = append(pairs, ConfigPair{
				Name:    fmt.Sprintf("%s vs %s", r.Devices[rep].Name, r.Devices[m].Name),
				Config1: c1, Config2: c2,
			})
		}
	}
	if len(pairs) == 0 {
		return "", nil
	}
	batch := opts.BatchOptions
	batch.CacheDir = ""
	batch.TraceParent = fsp
	batch.RunName = fmt.Sprintf("fleet paranoid (%d members)", len(pairs))
	results, err := DiffBatch(ctx, pairs, batch)
	for _, res := range results {
		if res.Err == nil && res.Report.TotalDifferences() != 0 {
			return res.Name, err
		}
	}
	return "", err
}

// Each streams the expanded results in the exact order DiffAll would
// produce them: every device pair i < j, named "NameI vs NameJ". Same-
// class pairs yield an empty (equivalent) report; cross-class pairs
// yield the representative report retargeted at the member pair; pairs
// touching a failed device yield its error. Return false to stop early.
func (r *FleetResult) Each(fn func(BatchResult) bool) {
	for i := 0; i < len(r.Devices); i++ {
		for j := i + 1; j < len(r.Devices); j++ {
			if !fn(r.expand(i, j)) {
				return
			}
		}
	}
}

// Results materializes every expanded pair — DiffAll-shaped output.
// At large N prefer Each: this allocates N·(N−1)/2 results.
func (r *FleetResult) Results() []BatchResult {
	out := make([]BatchResult, 0, len(r.Devices)*(len(r.Devices)-1)/2)
	r.Each(func(res BatchResult) bool {
		out = append(out, res)
		return true
	})
	return out
}

// Pair produces the expanded result for one member pair on demand —
// what position (i, j) of Results would hold, without materializing the
// other N·(N−1)/2−1 results. The daemon's GET /report/{a}/{b} handler
// is the motivating caller. Panics unless 0 ≤ i < j < len(Devices).
func (r *FleetResult) Pair(i, j int) BatchResult {
	if i < 0 || j <= i || j >= len(r.Devices) {
		panic(fmt.Sprintf("campion: FleetResult.Pair(%d, %d) out of range (need 0 <= i < j < %d)",
			i, j, len(r.Devices)))
	}
	return r.expand(i, j)
}

// expand produces the result for member pair (i, j), i < j. It runs
// O(N^2) times per audit, so the name is concatenated, not formatted.
func (r *FleetResult) expand(i, j int) BatchResult {
	name := r.Devices[i].Name + " vs " + r.Devices[j].Name
	if err := r.DeviceErrs[i]; err != nil {
		return BatchResult{Name: name, Err: retarget(err, name)}
	}
	if err := r.DeviceErrs[j]; err != nil {
		return BatchResult{Name: name, Err: retarget(err, name)}
	}
	ci, cj := r.classOf[i], r.classOf[j]
	if ci == cj {
		// Same semantic class: equivalent by construction (and by
		// Paranoid verification when enabled).
		return BatchResult{Name: name, Report: &core.Report{Config1: r.render[i], Config2: r.render[j]}}
	}
	key := [2]int{ci, cj}
	if err, ok := r.repErr[key]; ok {
		return BatchResult{Name: name, Err: retarget(err, name)}
	}
	rep, ok := r.repRep[key]
	if !ok {
		return BatchResult{Name: name, Err: &PairError{Pair: name, Kind: ErrInternal,
			Err: fmt.Errorf("no representative report for class pair %v", key)}}
	}
	return BatchResult{Name: name, Report: fleet.RespanReport(rep, r.render[i], r.render[j])}
}

// retarget renames a representative's (or device's) error for the member
// pair it is being expanded to, keeping kind, cause, and provenance.
func retarget(err error, name string) error {
	if pe, ok := err.(*PairError); ok {
		clone := *pe
		clone.Pair = name
		return &clone
	}
	return err
}

// fleetMetrics is the live-publication half of the fleet counters: every
// instrument is resolved once per run, then advanced atomically as the
// phases progress, so a mid-run /metrics scrape reads real in-flight
// state instead of end-of-run zeros. The pub* tallies mirror what was
// published; finish() reconciles them against the run's final Stats —
// any shortfall is topped up (the counters end exactly where the old
// end-of-run flush would have left them) and the verdict lands in the
// journal as a metrics_check event.
type fleetMetrics struct {
	journal *obs.Journal

	runsTotal  *obs.Counter
	runsActive *obs.Gauge
	hashed     *obs.Counter
	parseDedup *obs.Counter
	fallbacks  *obs.Counter
	devices    *obs.Gauge
	classes    *obs.Gauge
	repPairs   *obs.Counter
	repDiffed  *obs.Counter
	hitReport  *obs.Counter
	hitHash    *obs.Counter
	missReport *obs.Counter
	missHash   *obs.Counter
	evictions  *obs.Counter
	corrupt    *obs.Counter

	pubDedup, pubFallbacks    atomic.Uint64
	pubRepPairs, pubRepDiffed atomic.Uint64
	pubHitR, pubHitH          atomic.Uint64
	pubMissR, pubMissH        atomic.Uint64
	pubEvictions, pubCorrupt  atomic.Uint64
}

// newFleetMetrics resolves the fleet instruments: in the run's
// configured registry when one is set, else the process default (the
// registry `campion -serve` exposes), matching recordParse.
func newFleetMetrics(opts FleetOptions, journal *obs.Journal) *fleetMetrics {
	reg := opts.Metrics
	if reg == nil {
		reg = obs.Default
	}
	rep, hash := obs.L("kind", "report"), obs.L("kind", "hash")
	return &fleetMetrics{
		journal:    journal,
		runsTotal:  reg.Counter("campion_fleet_runs_total", "fleet audits completed"),
		runsActive: reg.Gauge("campion_fleet_runs_active", "fleet audits currently in flight"),
		hashed: reg.Counter("campion_fleet_devices_hashed_total",
			"devices resolved to a semantic hash"),
		parseDedup: reg.Counter("campion_fleet_parse_dedup_total",
			"device parses skipped via persisted hash entries"),
		fallbacks: reg.Counter("campion_fleet_hash_fallbacks_total",
			"devices hashed with the intensional fallback"),
		devices:    reg.Gauge("campion_fleet_devices", "devices in the last fleet audit"),
		classes:    reg.Gauge("campion_fleet_classes", "semantic classes in the last fleet audit"),
		repPairs:   reg.Counter("campion_fleet_rep_pairs_total", "representative pairs resolved"),
		repDiffed:  reg.Counter("campion_fleet_rep_computed_total", "representative pairs actually diffed"),
		hitReport:  reg.Counter("campion_fleet_cache_hits_total", "persistent cache hits", rep),
		hitHash:    reg.Counter("campion_fleet_cache_hits_total", "persistent cache hits", hash),
		missReport: reg.Counter("campion_fleet_cache_misses_total", "persistent cache misses", rep),
		missHash:   reg.Counter("campion_fleet_cache_misses_total", "persistent cache misses", hash),
		evictions:  reg.Counter("campion_fleet_cache_evictions_total", "persistent cache entries evicted"),
		corrupt:    reg.Counter("campion_fleet_cache_corrupt_total", "persistent cache entries discarded as corrupt"),
	}
}

// cacheEvent is the Store observer: each hit/miss/evict/corrupt advances
// the live counter for its kind and lands in the journal.
func (fm *fleetMetrics) cacheEvent(op, kind string) {
	switch {
	case op == "hit" && kind == "report":
		fm.hitReport.Inc()
		fm.pubHitR.Add(1)
	case op == "hit" && kind == "hash":
		fm.hitHash.Inc()
		fm.pubHitH.Add(1)
	case op == "miss" && kind == "report":
		fm.missReport.Inc()
		fm.pubMissR.Add(1)
	case op == "miss" && kind == "hash":
		fm.missHash.Inc()
		fm.pubMissH.Add(1)
	case op == "evict":
		fm.evictions.Inc()
		fm.pubEvictions.Add(1)
	case op == "corrupt":
		fm.corrupt.Inc()
		fm.pubCorrupt.Add(1)
	}
	fm.journal.Emit(obs.Event{Type: obs.EvCache, Op: op, Kind: kind})
}

// finish is the end-of-run consistency check: the final Stats are the
// ground truth the old flush published; any counter the incremental path
// under-published is topped up, and every verdict is journaled. (Over-
// publication can only happen when one Store is shared across concurrent
// runs — the observer then sees the other runs' traffic too; counters
// are monotone, so it is reported, not subtracted.)
func (fm *fleetMetrics) finish(r *FleetResult) {
	fm.runsTotal.Inc()
	detail := map[string]string{}
	check := func(name string, published uint64, expected uint64, c *obs.Counter) {
		if published == expected {
			detail[name] = "ok"
			return
		}
		if published < expected {
			c.Add(expected - published)
			detail[name] = fmt.Sprintf("reconciled +%d (published %d, expected %d)",
				expected-published, published, expected)
			return
		}
		detail[name] = fmt.Sprintf("over-published %d vs %d (shared store?)", published, expected)
	}
	check("parse_dedup", fm.pubDedup.Load(), uint64(r.Stats.ParsesAvoided), fm.parseDedup)
	check("hash_fallbacks", fm.pubFallbacks.Load(), uint64(r.Stats.HashFallbacks), fm.fallbacks)
	check("rep_pairs", fm.pubRepPairs.Load(), uint64(r.Stats.RepPairs), fm.repPairs)
	check("rep_computed", fm.pubRepDiffed.Load(), uint64(r.Stats.RepComputed), fm.repDiffed)
	c := r.Stats.Cache
	check("cache_hits_report", fm.pubHitR.Load(), c.ReportHits, fm.hitReport)
	check("cache_hits_hash", fm.pubHitH.Load(), c.HashHits, fm.hitHash)
	check("cache_misses_report", fm.pubMissR.Load(), c.ReportMisses, fm.missReport)
	check("cache_misses_hash", fm.pubMissH.Load(), c.HashMisses, fm.missHash)
	check("cache_evictions", fm.pubEvictions.Load(), c.Evictions, fm.evictions)
	check("cache_corrupt", fm.pubCorrupt.Load(), c.Corrupt, fm.corrupt)
	fm.journal.Emit(obs.Event{Type: obs.EvCheck, Detail: detail})
}

// orientationCount is the number of member pairs (i < j) orientation
// (a, b) expands to: for each i in a's members, the members of b after
// it. Both lists ascend, so one merge pass suffices.
func orientationCount(ma, mb []int) int64 {
	var cnt int64
	k := 0
	for _, i := range ma {
		for k < len(mb) && mb[k] < i {
			k++
		}
		cnt += int64(len(mb) - k)
	}
	return cnt
}
