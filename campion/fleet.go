package campion

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/ir"
	"repro/internal/obs"
)

// FleetStore is the persistent cache under a -cache-dir: device-hash
// entries (skip re-parsing unchanged files) and finished pair reports
// keyed by (hashA, hashB, options fingerprint). Safe for concurrent use
// by goroutines and by separate processes sharing the directory
// (last-writer-wins; see internal/fleet).
type FleetStore = fleet.Store

// OpenFleetStore opens (creating if needed) a persistent cache.
func OpenFleetStore(dir string) (*FleetStore, error) { return fleet.OpenStore(dir) }

// ContentSum fingerprints raw configuration bytes for FleetDevice:
// supplying it lets cached hash entries stand in for parsing entirely.
func ContentSum(data []byte) string { return fleet.ContentSum(data) }

// FleetDevice is one device of a fleet audit. Exactly one of Config or
// Load supplies the parsed configuration; Load lets warm cache runs skip
// parsing entirely when ContentSum finds a stored hash entry.
type FleetDevice struct {
	// Name labels the device in pair names ("Name1 vs Name2").
	Name string
	// Config is the parsed configuration, when the caller already has it.
	Config *Config
	// Load parses the configuration on demand. It is called at most once
	// per DiffFleet run, and only when the device's semantic hash is not
	// already known (cold cache, or the device is a class representative
	// that must actually be diffed).
	Load func() (*Config, error)
	// ContentSum, when set, is fleet.ContentSum of the raw configuration
	// bytes; with a cache it keys the persisted hash entry.
	ContentSum string
	// Hash, when set, is a precomputed semantic hash (skips hashing).
	Hash string
	// Hostname and File override the rendering identity when the
	// configuration itself is never loaded (warm cache). They are filled
	// from the configuration or the cache when left empty.
	Hostname string
	File     string
}

// FleetOptions configures a DiffFleet run.
type FleetOptions struct {
	BatchOptions
	// CacheDir, when non-empty, persists device hashes and pair reports
	// across runs. Store may be supplied instead to share an open store.
	CacheDir string
	// Store is an already-open persistent cache; takes precedence over
	// CacheDir.
	Store *FleetStore
	// Paranoid additionally verifies every non-representative class
	// member against its representative with a full diff — a hash
	// collision check. It re-parses every device, so it forfeits the
	// warm-cache parse savings by design.
	Paranoid bool
	// NoCluster disables semantic clustering: every device is its own
	// class, so all pairs are diffed (the persistent report cache still
	// applies). For measurement and debugging.
	NoCluster bool
	// MaxCachedReports bounds the persistent report entries kept on
	// disk; 0 means unlimited.
	MaxCachedReports int
}

// FleetClass is one semantic equivalence class: devices whose
// configurations are interchangeable in any comparison (equal semantic
// hashes). Members are device indices in ascending order; Members[0] is
// the class representative.
type FleetClass struct {
	Hash    string
	Members []int
}

// FleetStats summarizes what a DiffFleet run actually did.
type FleetStats struct {
	// Devices is the fleet size; Failed counts devices whose
	// configurations could not be loaded or hashed.
	Devices, Failed int
	// Classes is the number of semantic equivalence classes among the
	// live devices.
	Classes int
	// RepPairs is the number of ordered class-representative pairs the
	// run needed; RepComputed of those were actually diffed (the rest
	// came from the persistent cache).
	RepPairs, RepComputed int
	// ExpandedPairs is the number of member pairs the results cover —
	// the naive all-pairs count.
	ExpandedPairs int
	// ParsesAvoided counts devices whose parse was skipped because a
	// cached hash entry matched their raw bytes; HashFallbacks counts
	// devices hashed with the intensional fallback.
	ParsesAvoided, HashFallbacks int
	// Cache is the persistent store's counter snapshot (zero without a
	// cache).
	Cache fleet.StoreStats
}

// FleetResult holds a finished fleet audit: the classes, the
// representative reports, and the machinery to expand them to all member
// pairs on demand — materializing half a million BatchResults up front
// would defeat the point at fleet scale.
type FleetResult struct {
	Devices []FleetDevice
	Classes []FleetClass
	Stats   FleetStats

	// DeviceErrs[i] is non-nil when device i failed to load or hash;
	// its pairs expand to ErrParse results.
	DeviceErrs []error

	classOf  []int // device index -> class index; -1 for failed devices
	render   []*ir.Config
	repRep   map[[2]int]*core.Report // ordered class pair -> report
	repErr   map[[2]int]error
	liveSize int
}

// DiffFleet audits a fleet: hash every device, cluster by semantic hash,
// diff only class representatives (reusing persisted reports when a
// cache is configured), and expose the results expanded to every member
// pair — byte-identical to running DiffAll naively over the whole fleet.
//
// Per-pair failures land in the expanded results as *PairError, exactly
// as with DiffBatch; the returned error is non-nil only for setup
// failures (unusable cache directory), context cancellation, or a
// Paranoid-mode hash-collision detection.
func DiffFleet(ctx context.Context, devices []FleetDevice, opts FleetOptions) (*FleetResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	store := opts.Store
	if store == nil && opts.CacheDir != "" {
		var err error
		if store, err = fleet.OpenStore(opts.CacheDir); err != nil {
			return nil, err
		}
	}
	if store != nil && opts.MaxCachedReports > 0 {
		store.SetMaxReports(opts.MaxCachedReports)
	}
	// A shared Store accumulates counters across runs; report this run's
	// activity as a delta against its state at entry.
	var statsBefore fleet.StoreStats
	if store != nil {
		statsBefore = store.Stats()
	}

	r := &FleetResult{
		Devices:    append([]FleetDevice(nil), devices...),
		DeviceErrs: make([]error, len(devices)),
		classOf:    make([]int, len(devices)),
		render:     make([]*ir.Config, len(devices)),
		repRep:     map[[2]int]*core.Report{},
		repErr:     map[[2]int]error{},
	}
	r.Stats.Devices = len(devices)

	resolveDevices(ctx, r, store, &opts)
	cluster(r, opts.NoCluster)

	optsFP := fleet.OptionsFingerprint(opts.Options)
	if err := diffRepresentatives(ctx, r, store, opts, optsFP); err != nil {
		return r, err
	}
	collision, err := verifyParanoid(ctx, r, opts)

	if store != nil {
		store.EvictNow()
		after := store.Stats()
		r.Stats.Cache = fleet.StoreStats{
			ReportHits:   after.ReportHits - statsBefore.ReportHits,
			ReportMisses: after.ReportMisses - statsBefore.ReportMisses,
			HashHits:     after.HashHits - statsBefore.HashHits,
			HashMisses:   after.HashMisses - statsBefore.HashMisses,
			Evictions:    after.Evictions - statsBefore.Evictions,
			Corrupt:      after.Corrupt - statsBefore.Corrupt,
		}
	}
	flushFleetMetrics(r, opts)
	if err != nil {
		return r, err
	}
	if collision != "" {
		return r, fmt.Errorf("paranoid verification failed: %s (semantic hash collision or hasher bug)", collision)
	}
	return r, batchCtxErr(ctx)
}

// resolveDevices fills in each device's semantic hash, hostname, and
// rendering identity — from the caller, the persistent cache, or by
// loading and hashing the configuration. Runs on a worker pool; each
// worker owns a private Hasher.
func resolveDevices(ctx context.Context, r *FleetResult, store *fleet.Store, opts *FleetOptions) {
	workers := opts.BatchWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(r.Devices) {
		workers = len(r.Devices)
	}
	if workers < 1 {
		workers = 1
	}
	var mu sync.Mutex // guards the shared Stats fields
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var hasher *fleet.Hasher
			for i := range jobs {
				d := &r.Devices[i]
				if batchCtxErr(ctx) != nil {
					r.DeviceErrs[i] = pairError(d.Name, ErrCanceled, batchCtxErr(ctx))
					continue
				}
				// Cheapest first: caller-supplied hash, then the
				// persisted hash for these exact raw bytes, then load
				// and hash for real.
				if d.Hash == "" && store != nil && d.ContentSum != "" {
					if e, ok := store.GetHash(d.ContentSum); ok {
						d.Hash = e.Hash
						if d.Hostname == "" {
							d.Hostname = e.Hostname
						}
						if d.Config == nil {
							mu.Lock()
							r.Stats.ParsesAvoided++
							mu.Unlock()
						}
					}
				}
				if d.Hash == "" {
					cfg, err := materialize(d)
					if err != nil {
						r.DeviceErrs[i] = pairError(d.Name, ErrParse, err)
						continue
					}
					if hasher == nil {
						hasher = fleet.NewHasher()
					}
					hash, fallback := hasher.DeviceHash(cfg)
					d.Hash = hash
					if fallback {
						mu.Lock()
						r.Stats.HashFallbacks++
						mu.Unlock()
					}
					if store != nil && d.ContentSum != "" {
						store.PutHash(d.ContentSum, hash, cfg.Hostname, fallback)
					}
				}
				if d.Config != nil {
					if d.Hostname == "" {
						d.Hostname = d.Config.Hostname
					}
					if d.File == "" {
						d.File = d.Config.File
					}
				}
				r.render[i] = renderConfig(d)
			}
		}()
	}
	for i := range r.Devices {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range r.DeviceErrs {
		if err != nil {
			r.Stats.Failed++
		}
	}
}

// materialize returns the device's parsed configuration, loading (once)
// if necessary.
func materialize(d *FleetDevice) (*Config, error) {
	if d.Config != nil {
		return d.Config, nil
	}
	if d.Load == nil {
		return nil, fmt.Errorf("missing configuration")
	}
	cfg, err := d.Load()
	if err != nil {
		return nil, err
	}
	if cfg == nil {
		return nil, fmt.Errorf("missing configuration")
	}
	d.Config = cfg
	return cfg, nil
}

// renderConfig is the configuration identity used when expanding reports
// for this device: the real parsed config when available, otherwise a
// stub carrying exactly what rendering reads (hostname and file).
func renderConfig(d *FleetDevice) *ir.Config {
	if d.Config != nil {
		return d.Config
	}
	return &ir.Config{Hostname: d.Hostname, File: d.File}
}

// cluster partitions the live devices into semantic classes in order of
// first appearance, so class numbering (and therefore everything
// downstream) is deterministic.
func cluster(r *FleetResult, noCluster bool) {
	byHash := map[string]int{}
	for i := range r.Devices {
		if r.DeviceErrs[i] != nil {
			r.classOf[i] = -1
			continue
		}
		r.liveSize++
		key := r.Devices[i].Hash
		if noCluster {
			key = fmt.Sprintf("device-%d", i)
		}
		ci, ok := byHash[key]
		if !ok {
			ci = len(r.Classes)
			byHash[key] = ci
			r.Classes = append(r.Classes, FleetClass{Hash: r.Devices[i].Hash})
		}
		r.Classes[ci].Members = append(r.Classes[ci].Members, i)
		r.classOf[i] = ci
	}
	r.Stats.Classes = len(r.Classes)
	r.Stats.ExpandedPairs = len(r.Devices) * (len(r.Devices) - 1) / 2
}

// neededOrientations lists the ordered class pairs some member pair
// (i < j) actually expands to. Reports are directional — config1 vs
// config2 — so a class pair may be needed in one or both orientations
// depending on how its members interleave: (a, b) is needed iff some
// member of a precedes some member of b.
func (r *FleetResult) neededOrientations() [][2]int {
	var out [][2]int
	for a := range r.Classes {
		for b := range r.Classes {
			if a == b {
				continue
			}
			ma, mb := r.Classes[a].Members, r.Classes[b].Members
			if ma[0] < mb[len(mb)-1] {
				out = append(out, [2]int{a, b})
			}
		}
	}
	return out
}

// diffRepresentatives resolves every needed ordered class pair: from the
// persistent cache when possible, otherwise by actually diffing the two
// class representatives on the batch worker pool.
func diffRepresentatives(ctx context.Context, r *FleetResult, store *fleet.Store, opts FleetOptions, optsFP string) error {
	needed := r.neededOrientations()
	r.Stats.RepPairs = len(needed)

	var missing [][2]int
	for _, key := range needed {
		if store != nil {
			h1, h2 := r.Classes[key[0]].Hash, r.Classes[key[1]].Hash
			if rep, ok := store.GetReport(h1, h2, optsFP); ok {
				r.repRep[key] = rep
				continue
			}
		}
		missing = append(missing, key)
	}
	r.Stats.RepComputed = len(missing)
	if len(missing) == 0 {
		return nil
	}

	// The representatives of every miss must be real parsed configs now.
	pairs := make([]ConfigPair, len(missing))
	for n, key := range missing {
		i, j := r.Classes[key[0]].Members[0], r.Classes[key[1]].Members[0]
		di, dj := &r.Devices[i], &r.Devices[j]
		name := fmt.Sprintf("%s vs %s", di.Name, dj.Name)
		c1, err1 := materialize(di)
		c2, err2 := materialize(dj)
		switch {
		case err1 != nil:
			r.repErr[key] = pairError(di.Name, ErrParse, err1)
			continue
		case err2 != nil:
			r.repErr[key] = pairError(dj.Name, ErrParse, err2)
			continue
		}
		r.render[i], r.render[j] = c1, c2
		pairs[n] = ConfigPair{Name: name, Config1: c1, Config2: c2}
	}

	batch := opts.BatchOptions
	// The fleet layer already resolved the persistent cache for these
	// pairs; don't let the inner batch open a second store for them.
	batch.CacheDir = ""
	if batch.RunName == "" {
		batch.RunName = fmt.Sprintf("fleet (%d devices, %d classes)", len(r.Devices), len(r.Classes))
	}
	live := make([]ConfigPair, 0, len(pairs))
	liveKey := make([][2]int, 0, len(pairs))
	for n, p := range pairs {
		if p.Config1 != nil {
			live = append(live, p)
			liveKey = append(liveKey, missing[n])
		}
	}
	results, err := DiffBatch(ctx, live, batch)
	for n, res := range results {
		key := liveKey[n]
		if res.Err != nil {
			r.repErr[key] = res.Err
			continue
		}
		r.repRep[key] = res.Report
		if store != nil {
			store.PutReport(r.Classes[key[0]].Hash, r.Classes[key[1]].Hash, optsFP, res.Report)
		}
	}
	return err
}

// verifyParanoid fully diffs every non-representative member against its
// class representative. Any difference means two configurations hashed
// equal but are not semantically identical — a collision (or a hasher
// bug) worth stopping the audit for.
func verifyParanoid(ctx context.Context, r *FleetResult, opts FleetOptions) (string, error) {
	if !opts.Paranoid {
		return "", nil
	}
	var pairs []ConfigPair
	for _, cl := range r.Classes {
		rep := cl.Members[0]
		c1, err := materialize(&r.Devices[rep])
		if err != nil {
			continue
		}
		for _, m := range cl.Members[1:] {
			c2, err := materialize(&r.Devices[m])
			if err != nil {
				continue
			}
			pairs = append(pairs, ConfigPair{
				Name:    fmt.Sprintf("%s vs %s", r.Devices[rep].Name, r.Devices[m].Name),
				Config1: c1, Config2: c2,
			})
		}
	}
	if len(pairs) == 0 {
		return "", nil
	}
	batch := opts.BatchOptions
	batch.CacheDir = ""
	batch.RunName = fmt.Sprintf("fleet paranoid (%d members)", len(pairs))
	results, err := DiffBatch(ctx, pairs, batch)
	for _, res := range results {
		if res.Err == nil && res.Report.TotalDifferences() != 0 {
			return res.Name, err
		}
	}
	return "", err
}

// Each streams the expanded results in the exact order DiffAll would
// produce them: every device pair i < j, named "NameI vs NameJ". Same-
// class pairs yield an empty (equivalent) report; cross-class pairs
// yield the representative report retargeted at the member pair; pairs
// touching a failed device yield its error. Return false to stop early.
func (r *FleetResult) Each(fn func(BatchResult) bool) {
	for i := 0; i < len(r.Devices); i++ {
		for j := i + 1; j < len(r.Devices); j++ {
			if !fn(r.expand(i, j)) {
				return
			}
		}
	}
}

// Results materializes every expanded pair — DiffAll-shaped output.
// At large N prefer Each: this allocates N·(N−1)/2 results.
func (r *FleetResult) Results() []BatchResult {
	out := make([]BatchResult, 0, len(r.Devices)*(len(r.Devices)-1)/2)
	r.Each(func(res BatchResult) bool {
		out = append(out, res)
		return true
	})
	return out
}

// expand produces the result for member pair (i, j), i < j. It runs
// O(N^2) times per audit, so the name is concatenated, not formatted.
func (r *FleetResult) expand(i, j int) BatchResult {
	name := r.Devices[i].Name + " vs " + r.Devices[j].Name
	if err := r.DeviceErrs[i]; err != nil {
		return BatchResult{Name: name, Err: retarget(err, name)}
	}
	if err := r.DeviceErrs[j]; err != nil {
		return BatchResult{Name: name, Err: retarget(err, name)}
	}
	ci, cj := r.classOf[i], r.classOf[j]
	if ci == cj {
		// Same semantic class: equivalent by construction (and by
		// Paranoid verification when enabled).
		return BatchResult{Name: name, Report: &core.Report{Config1: r.render[i], Config2: r.render[j]}}
	}
	key := [2]int{ci, cj}
	if err, ok := r.repErr[key]; ok {
		return BatchResult{Name: name, Err: retarget(err, name)}
	}
	rep, ok := r.repRep[key]
	if !ok {
		return BatchResult{Name: name, Err: &PairError{Pair: name, Kind: ErrInternal,
			Err: fmt.Errorf("no representative report for class pair %v", key)}}
	}
	return BatchResult{Name: name, Report: fleet.RespanReport(rep, r.render[i], r.render[j])}
}

// retarget renames a representative's (or device's) error for the member
// pair it is being expanded to, keeping kind, cause, and provenance.
func retarget(err error, name string) error {
	if pe, ok := err.(*PairError); ok {
		clone := *pe
		clone.Pair = name
		return &clone
	}
	return err
}

// flushFleetMetrics publishes the run's fleet counters: into the run's
// configured registry when one is set, else the process default (the
// registry `campion -serve` exposes), matching recordParse.
func flushFleetMetrics(r *FleetResult, opts FleetOptions) {
	reg := opts.Metrics
	if reg == nil {
		reg = obs.Default
	}
	reg.Counter("campion_fleet_runs_total", "fleet audits completed").Inc()
	reg.Counter("campion_fleet_parse_dedup_total",
		"device parses skipped via persisted hash entries").Add(uint64(r.Stats.ParsesAvoided))
	reg.Gauge("campion_fleet_devices", "devices in the last fleet audit").Set(int64(r.Stats.Devices))
	reg.Gauge("campion_fleet_classes", "semantic classes in the last fleet audit").Set(int64(r.Stats.Classes))
	reg.Counter("campion_fleet_rep_pairs_total", "representative pairs resolved").Add(uint64(r.Stats.RepPairs))
	reg.Counter("campion_fleet_rep_computed_total", "representative pairs actually diffed").Add(uint64(r.Stats.RepComputed))
	reg.Counter("campion_fleet_hash_fallbacks_total",
		"devices hashed with the intensional fallback").Add(uint64(r.Stats.HashFallbacks))
	c := r.Stats.Cache
	reg.Counter("campion_fleet_cache_hits_total", "persistent cache hits", obs.L("kind", "report")).Add(c.ReportHits)
	reg.Counter("campion_fleet_cache_hits_total", "persistent cache hits", obs.L("kind", "hash")).Add(c.HashHits)
	reg.Counter("campion_fleet_cache_misses_total", "persistent cache misses", obs.L("kind", "report")).Add(c.ReportMisses)
	reg.Counter("campion_fleet_cache_misses_total", "persistent cache misses", obs.L("kind", "hash")).Add(c.HashMisses)
	reg.Counter("campion_fleet_cache_evictions_total", "persistent cache entries evicted").Add(c.Evictions)
	reg.Counter("campion_fleet_cache_corrupt_total", "persistent cache entries discarded as corrupt").Add(c.Corrupt)
}
