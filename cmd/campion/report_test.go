package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/obs"
)

// writeJournal renders events through a real Journal so the test file
// is bit-for-bit what a run would have produced.
func writeJournal(t *testing.T, path string, emit func(j *obs.Journal)) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	j := obs.NewJournal(f)
	emit(j)
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReportRequiresRunHeader: a journal without a run_start event must
// fail loudly instead of rendering a zero-value summary.
func TestReportRequiresRunHeader(t *testing.T) {
	dir := t.TempDir()

	headless := filepath.Join(dir, "headless.jsonl")
	writeJournal(t, headless, func(j *obs.Journal) {
		j.Emit(obs.Event{Type: obs.EvParse, Device: "r1"})
		j.Emit(obs.Event{Type: obs.EvHash, Device: "r1", Kind: "dag"})
	})
	if code := reportCmd([]string{headless}); code != 2 {
		t.Fatalf("report on headless journal = %d, want 2", code)
	}

	empty := filepath.Join(dir, "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if code := reportCmd([]string{empty}); code != 2 {
		t.Fatalf("report on empty journal = %d, want 2", code)
	}

	// A journal with a header renders, even when truncated (no run_end).
	ok := filepath.Join(dir, "ok.jsonl")
	writeJournal(t, ok, func(j *obs.Journal) {
		j.Emit(obs.Event{Type: obs.EvRunStart, Run: "campion -all", Detail: map[string]string{"go": "test"}})
		j.Emit(obs.Event{Type: obs.EvPair, Pair: "a|b", Dur: int64(time.Millisecond), Diffs: 1})
	})
	// Silence the summary: reportCmd writes to os.Stdout.
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	code := reportCmd([]string{ok})
	os.Stdout = old
	devnull.Close()
	if code != 0 {
		t.Fatalf("report on headed journal = %d, want 0", code)
	}
}
