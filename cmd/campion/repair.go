package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/campion"
)

// repairCmd implements `campion repair A.cfg B.cfg`: localize the
// semantic differences of the pair, search clause- and list-level edits
// to B that eliminate them, and emit the minimal verified repair as a
// text patch. Exit 0 when the pair is equivalent (possibly after the
// found repair), 1 when differences remain unrepaired, 2 on errors.
func repairCmd(args []string) int {
	fs := flag.NewFlagSet("repair", flag.ExitOnError)
	budget := fs.Int("budget", 2, "maximum number of composed edits per repair")
	maxCandidates := fs.Int("max-candidates", 0, "candidate evaluation budget across all depths (0 = default 4000)")
	topk := fs.Int("topk", 3, "report up to K verified repairs (or best partial candidates)")
	samples := fs.Int("samples", 0, "routes sampled for the concrete oracle cross-check (0 = default 48)")
	seed := fs.Int64("seed", 0, "sampling RNG seed (the search itself is deterministic)")
	timeout := fs.Duration("timeout", 0, "deadline for the whole repair run (0 = none)")
	maxNodes := fs.Int("max-nodes", 0, "BDD node budget per candidate evaluation (0 = unlimited)")
	reorder := fs.Bool("reorder", false, "search BDD variable orders and use the winner")
	gcFlag := fs.Bool("gc", false, "trim the localization encoding's unique table before the candidate loop")
	jsonOut := fs.Bool("json", false, "emit the machine-readable result instead of the text patch")
	apply := fs.Bool("apply", false, "rewrite CONFIG2 in place with the verified patched text")
	vendor1 := fs.String("vendor1", "auto", "dialect of CONFIG1: auto, cisco, juniper, arista")
	vendor2 := fs.String("vendor2", "auto", "dialect of CONFIG2: auto, cisco, juniper, arista")
	journalPath := fs.String("journal", "", "append a JSONL journal of per-pair repair events to this file")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: campion repair [flags] CONFIG1 CONFIG2\n")
		fmt.Fprintf(os.Stderr, "searches for minimal verified edits to CONFIG2 that make it equivalent to CONFIG1\n")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}

	cfg1, err := load(fs.Arg(0), *vendor1)
	if err != nil {
		return fatal(err)
	}
	cfg2, err := load(fs.Arg(1), *vendor2)
	if err != nil {
		return fatal(err)
	}
	braw, err := os.ReadFile(fs.Arg(1))
	if err != nil {
		return fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := campion.RepairOptions{
		MaxEdits: *budget, MaxCandidates: *maxCandidates, TopK: *topk,
		Samples: *samples, Seed: *seed, Timeout: *timeout, MaxNodes: *maxNodes,
		Reorder: *reorder, GC: *gcFlag,
		Metrics: campion.DefaultMetrics(),
	}
	if *journalPath != "" {
		jf, err := os.Create(*journalPath)
		if err != nil {
			return fatal(err)
		}
		defer jf.Close()
		opts.Journal = campion.NewJournal(jf)
	}

	res, err := campion.Repair(ctx, cfg1, cfg2, opts)
	if err != nil {
		return fatal(err)
	}

	// Render the patch when the repair is complete and every edit has a
	// vendor-text form; a repair can verify at the IR level yet be
	// inexpressible in B's dialect, which is reported, not hidden.
	var patch *campion.RepairPatch
	var patchErr error
	if res.Repaired() && len(res.Edits()) > 0 {
		patch, patchErr = res.Patch(string(braw))
		if patchErr == nil {
			// The emitted text must round-trip: re-parse and re-verify
			// before anyone trusts (or applies) it.
			if _, err := campion.RepairVerify(cfg1, cfg2.Vendor, fs.Arg(1), patch.Patched, opts); err != nil {
				patch, patchErr = nil, fmt.Errorf("rendered patch failed verification: %w", err)
			}
		}
	}

	if *jsonOut {
		if err := writeRepairJSON(os.Stdout, res, patch, patchErr); err != nil {
			return fatal(err)
		}
	} else {
		writeRepairText(os.Stdout, res, patch, patchErr)
	}

	if *apply {
		if patch == nil {
			fmt.Fprintln(os.Stderr, "campion: -apply: no verified renderable patch to apply")
			return 1
		}
		if err := os.WriteFile(fs.Arg(1), []byte(patch.Patched), 0o644); err != nil {
			return fatal(err)
		}
		fmt.Fprintf(os.Stderr, "campion: applied %d edit(s) to %s\n", len(res.Edits()), fs.Arg(1))
	}

	for _, p := range res.Pairs {
		if p.Err != nil {
			return 2
		}
	}
	if !res.Repaired() {
		return 1
	}
	return 0
}

// writeRepairText renders the human-readable outcome: per-pair status,
// the winning edits, alternatives, then the patch itself.
func writeRepairText(w *os.File, res *campion.RepairResult, patch *campion.RepairPatch, patchErr error) {
	for _, p := range res.Pairs {
		fmt.Fprintf(w, "=== %s ===\n", p.Pair)
		switch {
		case p.Err != nil:
			fmt.Fprintf(w, "error: %v\n", p.Err)
			continue
		case p.InitialDiffs == 0:
			fmt.Fprintf(w, "equivalent (no repair needed)\n")
			continue
		case p.Repair != nil:
			fmt.Fprintf(w, "repaired: %d diff region(s) eliminated by %d edit(s), size %d (depth %d, %d candidates, %v)\n",
				p.InitialDiffs, len(p.Repair.Edits), p.Repair.Size, p.Depth, p.Candidates, p.Elapsed.Round(time.Millisecond))
			for _, e := range p.Repair.Edits {
				fmt.Fprintf(w, "  - %s\n", e.Describe())
			}
		default:
			fmt.Fprintf(w, "NOT repaired: %d diff region(s) remain after %d candidates (depth %d)\n",
				p.InitialDiffs, p.Candidates, p.Depth)
		}
		for i, alt := range p.Alternatives {
			kind := "alternative"
			if !alt.Verified {
				kind = "partial"
			}
			fmt.Fprintf(w, "  %s %d (size %d, residual %d): %s\n", kind, i+1, alt.Size, alt.Residual, alt.Describe())
			for _, r := range alt.Residuals {
				fmt.Fprintf(w, "      residual: %s\n", r)
			}
		}
		if p.OracleRejections > 0 {
			fmt.Fprintf(w, "  note: %d candidate(s) passed symbolically but were refuted by the concrete oracle\n",
				p.OracleRejections)
		}
	}
	switch {
	case patch != nil:
		fmt.Fprint(w, patch.Text)
	case patchErr != nil:
		fmt.Fprintf(w, "(repair verified at the IR level but has no vendor-text patch: %v)\n", patchErr)
	}
}

// repairJSON is the machine-readable shape of a repair run.
type repairJSON struct {
	Repaired     bool             `json:"repaired"`
	InitialDiffs int              `json:"initial_diffs"`
	Pairs        []repairPairJSON `json:"pairs"`
	Patch        string           `json:"patch,omitempty"`
	PatchError   string           `json:"patch_error,omitempty"`
	Conflicts    []string         `json:"conflicts,omitempty"`
}

type repairPairJSON struct {
	Pair             string           `json:"pair"`
	Kind             string           `json:"kind"`
	InitialDiffs     int              `json:"initial_diffs"`
	Depth            int              `json:"depth"`
	Candidates       int              `json:"candidates"`
	OracleRejections int              `json:"oracle_rejections,omitempty"`
	ElapsedMS        int64            `json:"elapsed_ms"`
	Repair           *repairCandJSON  `json:"repair,omitempty"`
	Alternatives     []repairCandJSON `json:"alternatives,omitempty"`
	Err              string           `json:"error,omitempty"`
}

type repairCandJSON struct {
	Edits      []string `json:"edits"`
	Size       int      `json:"size"`
	Residual   int      `json:"residual"`
	Residuals  []string `json:"residuals,omitempty"`
	Verified   bool     `json:"verified"`
	Renderable bool     `json:"renderable"`
}

func candJSON(c campion.RepairCandidate) repairCandJSON {
	out := repairCandJSON{
		Size: c.Size, Residual: c.Residual, Residuals: c.Residuals,
		Verified: c.Verified, Renderable: c.Renderable,
	}
	for _, e := range c.Edits {
		out.Edits = append(out.Edits, e.Describe())
	}
	return out
}

func writeRepairJSON(w *os.File, res *campion.RepairResult, patch *campion.RepairPatch, patchErr error) error {
	out := repairJSON{
		Repaired:     res.Repaired(),
		InitialDiffs: res.TotalDiffs(),
		Conflicts:    res.Conflicts,
	}
	if patch != nil {
		out.Patch = patch.Text
	}
	if patchErr != nil {
		out.PatchError = patchErr.Error()
	}
	for _, p := range res.Pairs {
		pj := repairPairJSON{
			Pair: p.Pair.String(), Kind: p.Kind(), InitialDiffs: p.InitialDiffs,
			Depth: p.Depth, Candidates: p.Candidates, OracleRejections: p.OracleRejections,
			ElapsedMS: p.Elapsed.Milliseconds(),
		}
		if p.Repair != nil {
			cj := candJSON(*p.Repair)
			pj.Repair = &cj
		}
		for _, alt := range p.Alternatives {
			pj.Alternatives = append(pj.Alternatives, candJSON(alt))
		}
		if p.Err != nil {
			pj.Err = p.Err.Error()
		}
		out.Pairs = append(out.Pairs, pj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
