package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/difftest"
)

// selfcheck is the `campion selfcheck CONFIG1 CONFIG2` subcommand: it
// runs the differential oracle harness over the pair, cross-checking the
// symbolic diff engine against the concrete interpreter on every policy
// and ACL pair the comparison would examine. Exit status: 0 the engine
// is consistent on this input, 1 a violation was found (an engine bug —
// report it), 2 usage or load errors.
func selfcheck(args []string) int {
	fs := flag.NewFlagSet("selfcheck", flag.ExitOnError)
	samples := fs.Int("samples", 64, "concrete routes/packets sampled per compared pair")
	draws := fs.Int("draws", 4, "random witnesses drawn per reported diff region")
	seed := fs.Uint64("seed", 0, "sampler seed (same seed, same verdict)")
	vendor1 := fs.String("vendor1", "auto", "dialect of CONFIG1: auto, cisco, juniper, arista")
	vendor2 := fs.String("vendor2", "auto", "dialect of CONFIG2: auto, cisco, juniper, arista")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: campion selfcheck [flags] CONFIG1 CONFIG2\n")
		fmt.Fprintf(os.Stderr, "Cross-check the symbolic diff engine against the concrete oracle on one pair.\n")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	cfg1, err := load(fs.Arg(0), *vendor1)
	if err != nil {
		return fatal(err)
	}
	cfg2, err := load(fs.Arg(1), *vendor2)
	if err != nil {
		return fatal(err)
	}
	rep := difftest.CheckConfigs(cfg1, cfg2, difftest.Options{
		Samples:      *samples,
		WitnessDraws: *draws,
		Seed:         *seed,
	})
	for _, v := range rep.Violations {
		fmt.Printf("VIOLATION %s\n", v)
	}
	if rep.TotalViolations > len(rep.Violations) {
		fmt.Printf("(%d further violations suppressed)\n", rep.TotalViolations-len(rep.Violations))
	}
	fmt.Println(rep.Summary())
	if !rep.OK() {
		return 1
	}
	return 0
}
