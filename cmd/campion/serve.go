// The serve subcommand: campion as a long-lived daemon. Snapshots
// arrive over HTTP (POST /snapshot/{device}) or from a watched
// directory; every content-changing snapshot re-audits the fleet
// incrementally — warm hash/report caches prove the unedited devices
// unchanged, so steady-state audit cost is proportional to the edit.
// Results serve at GET /report/{a}/{b} and GET /fleet; /metrics, /runs,
// and /debug/pprof ride on the same listener. README.md's operations
// guide documents the endpoints and lifecycle.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/campion"
	"repro/internal/obs"
	"repro/internal/session"
)

func serveCmd(args []string) int {
	fs := flag.NewFlagSet("campion serve", flag.ExitOnError)
	addr := fs.String("addr", ":9090", "listen address for the daemon's HTTP endpoints")
	watch := fs.String("watch", "",
		"seed the session from this directory of configurations and poll it for edits")
	poll := fs.Duration("poll", 2*time.Second, "polling interval for -watch")
	cacheDir := fs.String("cache-dir", "",
		"persist semantic hashes and pair reports under this directory (cross-restart warm start); default is in-memory only")
	journalPath := fs.String("journal", "",
		"append a JSONL flight-recorder journal of every snapshot and audit to this file")
	workers := fs.Int("workers", 0, "comparison concurrency per audit (0 = one per CPU)")
	reorder := fs.Bool("reorder", false, "search BDD variable orders per pair (output is unchanged)")
	gcFlag := fs.Bool("gc", false, "garbage-collect BDD factories between pairs")
	maxNodes := fs.Int("max-nodes", 0, "BDD node budget per semantic task (0 = unlimited)")
	timeout := fs.Duration("timeout", 0, "deadline per audit (0 = none)")
	components := fs.String("components", "", "comma-separated component list (default: all)")
	exhaustiveComms := fs.Bool("exhaustive-communities", false,
		"localize the community dimension of route-map differences exhaustively")
	vendorFlag := fs.String("vendor", "auto", "dialect of every snapshot: auto, cisco, juniper, arista")
	maxReports := fs.Int("max-cached-reports", 0, "bound on-disk report cache entries (0 = unlimited)")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: campion serve [flags]\n")
		fmt.Fprintf(os.Stderr, "       campion serve -watch DIR [flags]\n\n")
		fmt.Fprintf(os.Stderr, "Run the incremental snapshot re-diff daemon. Push configurations with\n")
		fmt.Fprintf(os.Stderr, "  curl --data-binary @r1.cfg http://HOST/snapshot/r1\n")
		fmt.Fprintf(os.Stderr, "and read results from /report/{a}/{b} and /fleet. See README.md.\n\n")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 0 {
		fs.Usage()
		return 2
	}

	vendor, err := vendorOf(*vendorFlag)
	if err != nil {
		return fatal(err)
	}

	var opts campion.Options
	opts.ExhaustiveCommunities = *exhaustiveComms
	opts.Workers = *workers
	opts.Reorder = *reorder
	opts.GC = *gcFlag
	opts.MaxNodes = *maxNodes
	opts.Timeout = *timeout
	opts.Metrics = campion.DefaultMetrics()
	if *components != "" {
		for _, c := range strings.Split(*components, ",") {
			opts.Components = append(opts.Components, campion.Component(strings.TrimSpace(c)))
		}
	}

	build := obs.RegisterBuildInfo(obs.Default)

	var journal *campion.Journal
	if *journalPath != "" {
		jf, err := os.Create(*journalPath)
		if err != nil {
			return fatal(err)
		}
		defer jf.Close()
		journal = campion.NewJournal(jf)
	}
	opts.Journal = journal

	var store *campion.FleetStore
	if *cacheDir != "" {
		if store, err = campion.OpenFleetStore(*cacheDir); err != nil {
			return fatal(err)
		}
		if *maxReports > 0 {
			store.SetMaxReports(*maxReports)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	sess := session.New(session.Options{
		Diff: campion.BatchOptions{
			Options:      opts,
			BatchWorkers: *workers,
			RunLog:       campion.DefaultRunLog(),
		},
		Store:   store,
		Journal: journal,
		Vendor:  vendor,
	})
	srv := &session.Server{
		Session: sess,
		Obs:     &campion.ObsServer{Registry: campion.DefaultMetrics(), Runs: campion.DefaultRunLog()},
	}

	startT := time.Now()
	if journal != nil {
		detail := build.Detail()
		detail["options_fp"] = campion.CacheFingerprint(opts)
		detail["argv"] = strings.Join(os.Args[1:], " ")
		journal.Emit(campion.JournalEvent{Type: obs.EvRunStart,
			Run: "campion serve", Detail: detail})
	}

	if *watch != "" {
		if !isDir(*watch) {
			return fatal(fmt.Errorf("-watch %s: not a directory", *watch))
		}
		w := &session.Watcher{
			Session: sess, Dir: *watch, Interval: *poll,
			OnSweep: func(changed []session.IngestResult, st session.AuditStats) {
				fmt.Fprintf(os.Stderr,
					"campion: watch: %d snapshot(s) changed; audit: %d devices, %d classes, %d/%d rep pairs re-diffed in %s\n",
					len(changed), st.Devices, st.Classes, st.RepComputed, st.RepPairs,
					time.Duration(st.DurNS).Round(time.Millisecond))
			},
		}
		// Seed synchronously so the endpoints answer from a complete
		// fleet the moment the listener is up, then poll in background.
		if changed, st := w.Sweep(ctx, "seed"); len(changed) > 0 {
			fmt.Fprintf(os.Stderr,
				"campion: seeded %d device(s) from %s: %d classes, %d/%d rep pairs diffed in %s\n",
				len(changed), *watch, st.Classes, st.RepComputed, st.RepPairs,
				time.Duration(st.DurNS).Round(time.Millisecond))
		}
		go w.Run(ctx)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	go func() {
		<-ctx.Done()
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutCtx)
	}()

	fmt.Fprintf(os.Stderr, "campion: daemon serving on %s (snapshots, reports, /metrics, /runs, /debug/pprof)\n", *addr)
	err = httpSrv.ListenAndServe()
	status := 0
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "campion:", err)
		status = 2
	}
	if journal != nil {
		journal.Emit(campion.JournalEvent{Type: obs.EvRunEnd,
			Dur: int64(time.Since(startT)), N: int64(status)})
		if jerr := journal.Err(); jerr != nil {
			fmt.Fprintln(os.Stderr, "campion: journal:", jerr)
		}
	}
	return status
}

// vendorOf maps the -vendor flag onto a dialect.
func vendorOf(name string) (campion.Vendor, error) {
	switch name {
	case "auto", "":
		return campion.VendorUnknown, nil
	case "cisco":
		return campion.VendorCisco, nil
	case "juniper":
		return campion.VendorJuniper, nil
	case "arista":
		return campion.VendorArista, nil
	}
	return campion.VendorUnknown, fmt.Errorf("unknown vendor %q (want auto, cisco, juniper, or arista)", name)
}
