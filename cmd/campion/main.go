// Command campion compares two router configurations and reports every
// behavioral difference, localized to the affected message headers and
// the responsible configuration lines (Tang et al., SIGCOMM 2021).
//
// Usage:
//
//	campion [flags] CONFIG1 CONFIG2
//	campion [flags] DIR1 DIR2
//	campion -all [flags] DIR
//	campion serve [flags]
//	campion repair [flags] CONFIG1 CONFIG2
//	campion selfcheck [flags] CONFIG1 CONFIG2
//	campion report [flags] RUN.jsonl
//
// The serve subcommand runs campion as a long-lived daemon: device
// configuration snapshots arrive over HTTP (POST /snapshot/{device}) or
// from a watched directory (-watch DIR), each content-changing snapshot
// incrementally re-audits the fleet (warm caches prove unedited devices
// unchanged, so steady-state cost is proportional to the edit), and the
// audited state serves at GET /report/{a}/{b} and GET /fleet alongside
// /metrics, /runs, and /debug/pprof. See README.md's operations guide.
//
// The repair subcommand goes one step past diagnosis: given a differing
// pair, it searches clause- and list-level edits to CONFIG2 — seeded by
// the localized diff regions — for a minimal edit sequence whose
// re-diff is empty, accepts a repair only when the concrete oracle
// agrees, and emits it as a text patch against CONFIG2's source (use
// -apply to rewrite the file in place). Exit 0 means equivalent (with
// or without a repair), 1 means differences remain unrepaired.
//
// The selfcheck subcommand does not compare the configurations for the
// operator — it audits the diff engine itself, cross-checking the
// symbolic results against an independent concrete interpreter on the
// given pair (witness soundness, completeness sampling, metamorphic
// properties). Exit 0 means consistent, 1 means an engine bug was found.
//
// The report subcommand replays a -journal flight-recorder file into an
// offline run summary (per-phase breakdown, slowest pairs, class-size
// skew, cache efficiency) and, with -trace, a Chrome trace.
//
// Flags:
//
//	-components=route-maps,acls,static,connected,bgp,ospf,admin
//	    restrict the comparison to the listed components
//	-format=text|json|summary
//	    output format (default text tables)
//	-vendor1, -vendor2=auto|cisco|juniper
//	    override dialect detection
//	-all
//	    compare every unordered pair of configurations inside one
//	    directory (fleet audit), on the parallel batch engine. Devices
//	    are clustered by semantic hash and only class representatives
//	    are diffed (output is byte-identical to the naive sweep);
//	    -cluster=false forces the naive quadratic path
//	-cache-dir=DIR
//	    persist semantic hashes and finished pair reports under DIR; a
//	    warm rerun over an unchanged fleet skips parsing and diffing
//	    entirely. Corrupt or stale entries are recomputed, never fatal
//	-paranoid
//	    verify every device against its class representative instead of
//	    trusting the semantic hash (collision guard; costs one diff per
//	    non-representative device)
//	-workers=N
//	    bound the comparison concurrency (0 = one worker per CPU). When a
//	    run has fewer unique comparisons than workers and a comparison is
//	    large (10k-rule scale), the comparison itself is partitioned
//	    across the workers (intra-pair striping); output is unchanged
//	-reorder
//	    search a family of BDD variable orders per configuration pair
//	    (scored by compiling a clause sample) and apply the winner to
//	    every factory of the route-map component; output is unchanged
//	-gc
//	    garbage-collect long-lived BDD factories between pairs, keeping
//	    batch memory flat on large fleet audits; output is unchanged
//	-stats
//	    print per-component wall time and BDD statistics to stderr
//	-cpuprofile=FILE, -memprofile=FILE
//	    write pprof CPU / heap profiles, so kernel work is profileable
//	    without editing code
//	-trace=FILE
//	    record the run as a span tree: Chrome trace_event JSON to FILE
//	    (load it at chrome://tracing or ui.perfetto.dev) and an indented
//	    span tree to stderr
//	-serve=ADDR
//	    expose /metrics (Prometheus text), /runs (recent batch runs), and
//	    /debug/pprof on ADDR. With no positional arguments campion just
//	    serves; with a comparison it serves during and after the run,
//	    until interrupted
//	-timeout=DURATION
//	    deadline for the whole run; comparisons still in flight are
//	    interrupted (polled from inside the BDD kernels) and report as
//	    canceled. Ctrl-C / SIGTERM cancel the same way.
//	-max-nodes=N
//	    BDD node budget per semantic task; a comparison that exceeds it
//	    fails with a budget error while the rest of the batch completes
//	-strict
//	    exit 2 when any pair fails (parse, budget, cancellation, crash).
//	    Without it, batch modes degrade: failed pairs are reported on
//	    stderr and the exit status reflects only the differences found
//	-journal=FILE
//	    stream a JSONL flight-recorder journal of the run to FILE as it
//	    happens: run header (build info, options fingerprint), per-phase
//	    spans, per-device hash events, per-pair results, cache traffic.
//	    A crashed run leaves a replayable artifact; analyze with
//	    `campion report FILE`
//	-progress
//	    render a live one-line progress display (phase, counts, rate,
//	    ETA) on stderr, fed by the same event stream as -journal
//	-version
//	    print build provenance (VCS revision, go version) and exit
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/campion"
	"repro/internal/minesweeper"
	"repro/internal/obs"
)

// main delegates to run so deferred profile teardown survives every exit
// path (os.Exit would skip it).
func main() {
	os.Exit(run())
}

func run() int {
	// Subcommands dispatch before flag parsing so they own their flags.
	if len(os.Args) > 1 && os.Args[1] == "selfcheck" {
		return selfcheck(os.Args[2:])
	}
	if len(os.Args) > 1 && os.Args[1] == "report" {
		return reportCmd(os.Args[2:])
	}
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		return serveCmd(os.Args[2:])
	}
	if len(os.Args) > 1 && os.Args[1] == "repair" {
		return repairCmd(os.Args[2:])
	}
	components := flag.String("components", "", "comma-separated component list (default: all)")
	format := flag.String("format", "text", "output format: text, json, or summary")
	vendor1 := flag.String("vendor1", "auto", "dialect of CONFIG1: auto, cisco, juniper, arista")
	vendor2 := flag.String("vendor2", "auto", "dialect of CONFIG2: auto, cisco, juniper, arista")
	exhaustiveComms := flag.Bool("exhaustive-communities", false,
		"localize the community dimension of route-map differences exhaustively")
	baseline := flag.Bool("baseline", false,
		"additionally run the monolithic Minesweeper-style baseline on matched route maps (the paper's §2 comparison)")
	all := flag.Bool("all", false, "compare every pair of configurations within one directory")
	workers := flag.Int("workers", 0, "comparison concurrency (0 = one per CPU)")
	reorder := flag.Bool("reorder", false,
		"search BDD variable orders per configuration pair and use the winner (output is unchanged)")
	gcFlag := flag.Bool("gc", false,
		"garbage-collect long-lived BDD factories between pairs (bounds batch memory; output is unchanged)")
	stats := flag.Bool("stats", false, "print per-component wall time and BDD statistics to stderr")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON of the run to this file")
	serveAddr := flag.String("serve", "", "serve /metrics, /runs, and /debug/pprof on this address (e.g. :9090)")
	timeout := flag.Duration("timeout", 0, "deadline for the whole run (0 = none)")
	maxNodes := flag.Int("max-nodes", 0, "BDD node budget per semantic task (0 = unlimited)")
	strict := flag.Bool("strict", false, "exit 2 when any pair fails instead of degrading to partial results")
	cacheDir := flag.String("cache-dir", "",
		"persist semantic hashes and pair reports under this directory; warm reruns over an unchanged fleet skip parsing and diffing")
	cluster := flag.Bool("cluster", true,
		"with -all: cluster devices by semantic hash and diff class representatives only (output is unchanged)")
	paranoid := flag.Bool("paranoid", false,
		"with -all -cluster: verify every device against its class representative (guards against hash collisions)")
	journalPath := flag.String("journal", "",
		"append a JSONL flight-recorder journal of the run to this file (replay it with `campion report`)")
	progress := flag.Bool("progress", false,
		"render a live one-line progress display with ETA on stderr")
	version := flag.Bool("version", false, "print build provenance and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: campion [flags] CONFIG1 CONFIG2\n")
		fmt.Fprintf(os.Stderr, "       campion [flags] DIR1 DIR2\n")
		fmt.Fprintf(os.Stderr, "       campion -all [flags] DIR\n")
		fmt.Fprintf(os.Stderr, "       campion -serve ADDR\n")
		fmt.Fprintf(os.Stderr, "       campion serve [-watch DIR] [flags]\n")
		fmt.Fprintf(os.Stderr, "       campion repair [flags] CONFIG1 CONFIG2\n")
		fmt.Fprintf(os.Stderr, "       campion selfcheck [flags] CONFIG1 CONFIG2\n")
		fmt.Fprintf(os.Stderr, "       campion report [flags] RUN.jsonl\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	// Build provenance: printable via -version, exposed as the
	// campion_build_info gauge, and stamped into the journal run header.
	build := obs.RegisterBuildInfo(obs.Default)
	if *version {
		fmt.Printf("campion %s\n", build.String())
		return 0
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "campion:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retention
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "campion:", err)
			}
		}()
	}

	// The run context: canceled by Ctrl-C / SIGTERM, bounded by -timeout.
	// It reaches every comparison, polled from inside the BDD kernels, so
	// even a pair stuck deep in symbolic computation stops promptly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var opts0 campion.Options
	opts0.ExhaustiveCommunities = *exhaustiveComms
	opts0.Workers = *workers
	opts0.Reorder = *reorder
	opts0.GC = *gcFlag
	opts0.MaxNodes = *maxNodes
	if *components != "" {
		for _, c := range strings.Split(*components, ",") {
			opts0.Components = append(opts0.Components, campion.Component(strings.TrimSpace(c)))
		}
	}

	// The flight recorder: -journal streams every stage's events to a
	// JSONL file as they happen (a crashed run still leaves a replayable
	// artifact); -progress follows the same event stream live. Either
	// flag alone works — a journal without a file serves listeners only.
	var journal *campion.Journal
	if *journalPath != "" {
		jf, err := os.Create(*journalPath)
		if err != nil {
			return fatal(err)
		}
		defer jf.Close()
		journal = campion.NewJournal(jf)
	} else if *progress {
		journal = campion.NewJournal(nil)
	}
	var prog *obs.Progress
	if *progress {
		prog = obs.NewProgress(os.Stderr)
		journal.Listen(prog.Event)
		defer prog.Close()
	}
	opts0.Journal = journal

	var tracer *campion.Tracer
	if *traceOut != "" {
		tracer = campion.NewTracer()
		opts0.Tracer = tracer
	}
	if *serveAddr != "" {
		// Every comparison in this process reports into the default
		// registry and run log, which is exactly what the server exposes.
		opts0.Metrics = campion.DefaultMetrics()
		srv := &campion.ObsServer{Registry: campion.DefaultMetrics(), Runs: campion.DefaultRunLog()}
		if flag.NArg() == 0 {
			// Serve-only mode: no comparison, just the endpoints (the
			// long-lived audit-service deployment).
			fmt.Fprintf(os.Stderr, "campion: serving /metrics, /runs, /debug/pprof on %s\n", *serveAddr)
			return fatal(srv.ListenAndServe(*serveAddr))
		}
		go func() {
			if err := srv.ListenAndServe(*serveAddr); err != nil {
				fmt.Fprintln(os.Stderr, "campion: serve:", err)
			}
		}()
	}

	// The comparison itself, as a closure so tracing and serving can wrap
	// every mode uniformly.
	work := func() int {
		// All-pairs mode: audit a whole directory of configurations
		// against each other on the batch engine.
		if *all {
			if flag.NArg() != 1 || !isDir(flag.Arg(0)) {
				flag.Usage()
				return 2
			}
			return diffAll(ctx, flag.Arg(0), opts0, allOptions{
				workers: *workers, format: *format, stats: *stats, strict: *strict,
				cacheDir: *cacheDir, cluster: *cluster, paranoid: *paranoid,
			})
		}
		if flag.NArg() != 2 {
			flag.Usage()
			return 2
		}

		// Directory mode: compare every matched pair across two
		// directories (the "all pairs of backup routers" workflow of §5.1).
		if isDir(flag.Arg(0)) && isDir(flag.Arg(1)) {
			return diffDirs(ctx, flag.Arg(0), flag.Arg(1), opts0, *workers, *format, *stats, *strict)
		}

		cfg1, err := load(flag.Arg(0), *vendor1)
		if err != nil {
			return fatal(err)
		}
		cfg2, err := load(flag.Arg(1), *vendor2)
		if err != nil {
			return fatal(err)
		}

		// Single-pair mode: any failure is fatal — there is no batch to
		// degrade into.
		rep, err := campion.DiffContext(ctx, cfg1, cfg2, opts0)
		if err != nil {
			return fatal(err)
		}
		switch *format {
		case "json":
			data, err := campion.JSON(rep)
			if err != nil {
				return fatal(err)
			}
			fmt.Println(string(data))
		case "summary":
			campion.WriteSummary(os.Stdout, rep)
		default:
			if err := campion.Write(os.Stdout, rep); err != nil {
				return fatal(err)
			}
		}
		if *stats {
			printStats(rep)
		}
		if *baseline {
			runBaseline(cfg1, cfg2)
		}
		if rep.TotalDifferences() > 0 {
			return 1 // differences found: non-zero, like diff(1)
		}
		return 0
	}

	// Run header: build provenance, the cache-keying options fingerprint,
	// and the invocation, so a replayed journal identifies its run.
	runStart := time.Now()
	if journal != nil {
		detail := build.Detail()
		detail["options_fp"] = campion.CacheFingerprint(opts0)
		detail["argv"] = strings.Join(os.Args[1:], " ")
		journal.Emit(campion.JournalEvent{
			Type:   obs.EvRunStart,
			Run:    "campion " + strings.Join(flag.Args(), " "),
			Detail: detail,
		})
	}

	status := work()

	if journal != nil {
		journal.Emit(campion.JournalEvent{Type: obs.EvRunEnd,
			Dur: int64(time.Since(runStart)), N: int64(status)})
		if err := journal.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "campion: journal:", err)
		}
	}
	if tracer != nil {
		writeTrace(tracer, *traceOut)
	}
	if *serveAddr != "" {
		// Keep the endpoints up so the finished run's metrics, run log,
		// and profiles can still be scraped; the exit status is printed
		// since only an interrupt ends the process now.
		fmt.Fprintf(os.Stderr, "campion: comparison done (status %d); serving on %s until interrupted\n",
			status, *serveAddr)
		select {}
	}
	return status
}

// writeTrace dumps the recorded span tree: Chrome trace_event JSON to
// path, and the human-readable tree to stderr.
func writeTrace(t *campion.Tracer, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "campion: trace:", err)
		return
	}
	defer f.Close()
	if err := t.WriteChromeTrace(f); err != nil {
		fmt.Fprintln(os.Stderr, "campion: trace:", err)
		return
	}
	fmt.Fprintf(os.Stderr, "--- trace (%s) ---\n", path)
	t.WriteTree(os.Stderr)
}

// printStats renders the report's per-component execution profile.
func printStats(rep *campion.Report) {
	fmt.Fprintf(os.Stderr, "%-12s %-14s %10s %6s %6s %7s %10s %12s %8s\n",
		"component", "kind", "wall", "pairs", "uniq", "workers", "bddNodes", "cacheHits", "pcHits")
	for _, st := range rep.Stats {
		fmt.Fprintf(os.Stderr, "%-12s %-14s %10s %6d %6d %7d %10d %12d %8d\n",
			st.Component, st.Kind, st.Duration.Round(time.Microsecond), st.Pairs,
			st.UniquePairs, st.Workers, st.BDDNodes, st.CacheHits, st.PolicyCacheHits)
	}
}

// runBaseline runs the monolithic checker on every matched policy pair
// and prints its one-counterexample-at-a-time view, so the two outputs
// can be compared directly (the paper's §2 exercise).
func runBaseline(cfg1, cfg2 *campion.Config) {
	fmt.Println("=== monolithic baseline (single counterexamples, no localization) ===")
	names := map[string]bool{}
	for n := range cfg1.RouteMaps {
		if _, ok := cfg2.RouteMaps[n]; ok {
			names[n] = true
		}
	}
	var sorted []string
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	for _, n := range sorted {
		ch, err := minesweeper.NewRouteMapChecker(cfg1, cfg1.RouteMaps[n], cfg2, cfg2.RouteMaps[n])
		if err != nil {
			fmt.Fprintln(os.Stderr, "campion: baseline:", err)
			continue
		}
		if ch.Equivalent() {
			fmt.Printf("route map %s: equivalent\n", n)
			continue
		}
		cex, _ := ch.NextCounterexample()
		fmt.Printf("route map %s: NOT equivalent\n", n)
		fmt.Printf("  counterexample route: %v\n", cex.Route)
		fmt.Printf("  %s action: %v; %s action: %v\n",
			cfg1.Hostname, cex.Result1.Action, cfg2.Hostname, cex.Result2.Action)
	}
}

func isDir(path string) bool {
	fi, err := os.Stat(path)
	return err == nil && fi.IsDir()
}

// failureTally counts failed pairs by kind for the end-of-run summary.
type failureTally map[string]int

func (t failureTally) add(err error) {
	t[campion.ErrKind(err)]++
}

func (t failureTally) total() int {
	n := 0
	for _, c := range t {
		n += c
	}
	return n
}

// report prints the failure summary to stderr and folds the failures
// into the exit status: strict mode turns any failure into status 2,
// otherwise the status (differences found / not found) stands and the
// run merely degrades to the pairs that worked.
func (t failureTally) report(status int, pairs int, strict bool) int {
	if t.total() == 0 {
		return status
	}
	var kinds []string
	for k := range t {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	parts := make([]string, 0, len(kinds))
	for _, k := range kinds {
		parts = append(parts, fmt.Sprintf("%s: %d", k, t[k]))
	}
	fmt.Fprintf(os.Stderr, "campion: %d of %d pairs failed (%s)\n",
		t.total(), pairs, strings.Join(parts, ", "))
	if strict {
		return 2
	}
	return status
}

// diffDirs compares every matched pair and prints one section per pair.
// Exit status: 0 all equivalent, 1 differences found, 2 usage/strict
// errors. Failed pairs degrade (reported per pair and summarized on
// stderr) unless strict is set.
func diffDirs(ctx context.Context, dir1, dir2 string, opts campion.Options, workers int, format string, stats bool, strict bool) int {
	results, err := campion.DiffDirsContext(ctx, dir1, dir2,
		campion.BatchOptions{Options: opts, BatchWorkers: workers,
			RunLog: campion.DefaultRunLog(), RunName: fmt.Sprintf("dirs %s vs %s", dir1, dir2)})
	if results == nil && err != nil {
		fmt.Fprintln(os.Stderr, "campion:", err)
		return 2
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "campion: audit incomplete:", err)
	}
	status := 0
	failed := failureTally{}
	for _, res := range results {
		fmt.Printf("=== pair %s ===\n", res.Pair.Name)
		switch {
		case res.Err != nil:
			fmt.Printf("error: %v\n\n", res.Err)
			failed.add(res.Err)
		case res.Report.TotalDifferences() == 0:
			fmt.Printf("equivalent\n\n")
		default:
			status = 1
			if format == "summary" {
				campion.WriteSummary(os.Stdout, res.Report)
				fmt.Println()
			} else {
				campion.Write(os.Stdout, res.Report)
			}
		}
		if stats && res.Report != nil {
			fmt.Fprintf(os.Stderr, "--- pair %s ---\n", res.Pair.Name)
			printStats(res.Report)
		}
	}
	return failed.report(status, len(results), strict)
}

// allOptions bundles the flags that shape an -all run.
type allOptions struct {
	workers           int
	format            string
	stats, strict     bool
	cacheDir          string
	cluster, paranoid bool
}

// diffAll compares every unordered pair of configurations within one
// directory (the fleet audit of §5.1: "are any two of these routers
// configured differently?"). By default devices are clustered by
// semantic hash and only class representatives are diffed — output is
// byte-identical to the naive quadratic sweep; -cluster=false forces
// the naive path. Same exit statuses as diffDirs; a configuration that
// fails to parse or load costs its pairs, not the audit.
func diffAll(ctx context.Context, dir string, opts campion.Options, ao allOptions) int {
	entries, err := os.ReadDir(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "campion:", err)
		return 2
	}
	var devices []campion.FleetDevice
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "campion:", err)
			return 2
		}
		text := string(data)
		devices = append(devices, campion.FleetDevice{
			Name:       strings.TrimSuffix(e.Name(), filepath.Ext(e.Name())),
			File:       path,
			ContentSum: campion.ContentSum(data),
			Load:       func() (*campion.Config, error) { return campion.Parse(path, text) },
		})
	}
	if len(devices) < 2 {
		fmt.Fprintf(os.Stderr, "campion: %s: need at least two configurations for -all\n", dir)
		return 2
	}

	fr, err := campion.DiffFleet(ctx, devices, campion.FleetOptions{
		BatchOptions: campion.BatchOptions{Options: opts, BatchWorkers: ao.workers,
			RunLog: campion.DefaultRunLog()},
		CacheDir:  ao.cacheDir,
		NoCluster: !ao.cluster,
		Paranoid:  ao.paranoid,
	})
	if fr == nil && err != nil {
		fmt.Fprintln(os.Stderr, "campion:", err)
		return 2
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "campion: audit incomplete:", err)
	}
	for i, derr := range fr.DeviceErrs {
		if derr != nil {
			fmt.Fprintf(os.Stderr, "campion: %s: %v\n", fr.Devices[i].File, derr)
		}
	}

	// The expansion is its own observable phase: the fleet engine's
	// journal stops at the representative reports, but rendering O(N^2)
	// pair sections dominates wall time at fleet scale.
	expStart := time.Now()
	opts.Journal.Emit(campion.JournalEvent{Type: obs.EvPhaseStart,
		Phase: "expand", Total: int64(fr.Stats.ExpandedPairs)})
	var esp *campion.Span
	if opts.Tracer != nil {
		esp = opts.Tracer.Root("expand", obs.Int("pairs", fr.Stats.ExpandedPairs))
	}

	// A fleet audit prints O(N^2) pair sections; buffering keeps the
	// expansion from being dominated by per-line write syscalls.
	out := bufio.NewWriterSize(os.Stdout, 1<<20)
	defer out.Flush()
	status := 0
	failed := failureTally{}
	pairs := 0
	fr.Each(func(res campion.BatchResult) bool {
		pairs++
		out.WriteString("=== " + res.Name + " ===\n")
		switch {
		case res.Err != nil:
			fmt.Fprintf(out, "error: %v\n\n", res.Err)
			failed.add(res.Err)
		case res.Report.TotalDifferences() == 0:
			out.WriteString("equivalent\n\n")
		default:
			status = 1
			if ao.format == "summary" {
				campion.WriteSummary(out, res.Report)
				fmt.Fprintln(out)
			} else {
				campion.Write(out, res.Report)
			}
		}
		return true
	})
	out.Flush()
	esp.End()
	expDur := int64(time.Since(expStart))
	opts.Journal.Emit(campion.JournalEvent{Type: obs.EvExpand,
		N: int64(pairs), Dur: expDur})
	opts.Journal.Emit(campion.JournalEvent{Type: obs.EvPhaseEnd,
		Phase: "expand", Dur: expDur, N: int64(pairs)})
	if ao.stats {
		printFleetStats(fr.Stats)
	}
	return failed.report(status, pairs, ao.strict)
}

// printFleetStats renders the clustering and cache profile of an -all run.
func printFleetStats(s campion.FleetStats) {
	fmt.Fprintf(os.Stderr, "--- fleet ---\n")
	fmt.Fprintf(os.Stderr, "devices: %d (%d failed), classes: %d, hash fallbacks: %d\n",
		s.Devices, s.Failed, s.Classes, s.HashFallbacks)
	fmt.Fprintf(os.Stderr, "pairs: %d expanded from %d representative pairs (%d computed, %d from cache)\n",
		s.ExpandedPairs, s.RepPairs, s.RepComputed, s.Cache.ReportHits)
	fmt.Fprintf(os.Stderr, "parses avoided: %d, cache: %d/%d report hits/misses, %d/%d hash hits/misses, %d evicted, %d corrupt\n",
		s.ParsesAvoided, s.Cache.ReportHits, s.Cache.ReportMisses,
		s.Cache.HashHits, s.Cache.HashMisses, s.Cache.Evictions, s.Cache.Corrupt)
}

func load(path, vendor string) (*campion.Config, error) {
	switch vendor {
	case "auto", "":
		return campion.LoadFile(path)
	case "cisco":
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return campion.ParseAs(campion.VendorCisco, path, string(data))
	case "juniper":
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return campion.ParseAs(campion.VendorJuniper, path, string(data))
	case "arista":
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return campion.ParseAs(campion.VendorArista, path, string(data))
	}
	return nil, fmt.Errorf("unknown vendor %q", vendor)
}

func fatal(err error) int {
	fmt.Fprintln(os.Stderr, "campion:", err)
	return 2
}
