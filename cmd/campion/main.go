// Command campion compares two router configurations and reports every
// behavioral difference, localized to the affected message headers and
// the responsible configuration lines (Tang et al., SIGCOMM 2021).
//
// Usage:
//
//	campion [flags] CONFIG1 CONFIG2
//
// Flags:
//
//	-components=route-maps,acls,static,connected,bgp,ospf,admin
//	    restrict the comparison to the listed components
//	-format=text|json|summary
//	    output format (default text tables)
//	-vendor1, -vendor2=auto|cisco|juniper
//	    override dialect detection
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/campion"
	"repro/internal/minesweeper"
)

func main() {
	components := flag.String("components", "", "comma-separated component list (default: all)")
	format := flag.String("format", "text", "output format: text, json, or summary")
	vendor1 := flag.String("vendor1", "auto", "dialect of CONFIG1: auto, cisco, juniper, arista")
	vendor2 := flag.String("vendor2", "auto", "dialect of CONFIG2: auto, cisco, juniper, arista")
	exhaustiveComms := flag.Bool("exhaustive-communities", false,
		"localize the community dimension of route-map differences exhaustively")
	baseline := flag.Bool("baseline", false,
		"additionally run the monolithic Minesweeper-style baseline on matched route maps (the paper's §2 comparison)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: campion [flags] CONFIG1 CONFIG2\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}

	var opts0 campion.Options
	opts0.ExhaustiveCommunities = *exhaustiveComms
	if *components != "" {
		for _, c := range strings.Split(*components, ",") {
			opts0.Components = append(opts0.Components, campion.Component(strings.TrimSpace(c)))
		}
	}

	// Directory mode: compare every matched pair across two directories
	// (the "all pairs of backup routers" workflow of §5.1).
	if isDir(flag.Arg(0)) && isDir(flag.Arg(1)) {
		os.Exit(diffDirs(flag.Arg(0), flag.Arg(1), opts0, *format))
	}

	cfg1, err := load(flag.Arg(0), *vendor1)
	if err != nil {
		fatal(err)
	}
	cfg2, err := load(flag.Arg(1), *vendor2)
	if err != nil {
		fatal(err)
	}

	rep, err := campion.Diff(cfg1, cfg2, opts0)
	if err != nil {
		fatal(err)
	}
	switch *format {
	case "json":
		data, err := campion.JSON(rep)
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(data))
	case "summary":
		campion.WriteSummary(os.Stdout, rep)
	default:
		if err := campion.Write(os.Stdout, rep); err != nil {
			fatal(err)
		}
	}
	if *baseline {
		runBaseline(cfg1, cfg2)
	}
	if rep.TotalDifferences() > 0 {
		os.Exit(1) // differences found: non-zero, like diff(1)
	}
}

// runBaseline runs the monolithic checker on every matched policy pair
// and prints its one-counterexample-at-a-time view, so the two outputs
// can be compared directly (the paper's §2 exercise).
func runBaseline(cfg1, cfg2 *campion.Config) {
	fmt.Println("=== monolithic baseline (single counterexamples, no localization) ===")
	names := map[string]bool{}
	for n := range cfg1.RouteMaps {
		if _, ok := cfg2.RouteMaps[n]; ok {
			names[n] = true
		}
	}
	var sorted []string
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	for _, n := range sorted {
		ch, err := minesweeper.NewRouteMapChecker(cfg1, cfg1.RouteMaps[n], cfg2, cfg2.RouteMaps[n])
		if err != nil {
			fmt.Fprintln(os.Stderr, "campion: baseline:", err)
			continue
		}
		if ch.Equivalent() {
			fmt.Printf("route map %s: equivalent\n", n)
			continue
		}
		cex, _ := ch.NextCounterexample()
		fmt.Printf("route map %s: NOT equivalent\n", n)
		fmt.Printf("  counterexample route: %v\n", cex.Route)
		fmt.Printf("  %s action: %v; %s action: %v\n",
			cfg1.Hostname, cex.Result1.Action, cfg2.Hostname, cex.Result2.Action)
	}
}

func isDir(path string) bool {
	fi, err := os.Stat(path)
	return err == nil && fi.IsDir()
}

// diffDirs compares every matched pair and prints one section per pair.
// Exit status: 0 all equivalent, 1 differences found, 2 errors.
func diffDirs(dir1, dir2 string, opts campion.Options, format string) int {
	results, err := campion.DiffDirs(dir1, dir2, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "campion:", err)
		return 2
	}
	status := 0
	for _, res := range results {
		fmt.Printf("=== pair %s ===\n", res.Pair.Name)
		switch {
		case res.Err != nil:
			fmt.Printf("error: %v\n\n", res.Err)
			status = 2
		case res.Report.TotalDifferences() == 0:
			fmt.Printf("equivalent\n\n")
		default:
			if status == 0 {
				status = 1
			}
			if format == "summary" {
				campion.WriteSummary(os.Stdout, res.Report)
				fmt.Println()
			} else {
				campion.Write(os.Stdout, res.Report)
			}
		}
	}
	return status
}

func load(path, vendor string) (*campion.Config, error) {
	switch vendor {
	case "auto", "":
		return campion.LoadFile(path)
	case "cisco":
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return campion.ParseAs(campion.VendorCisco, path, string(data))
	case "juniper":
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return campion.ParseAs(campion.VendorJuniper, path, string(data))
	case "arista":
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return campion.ParseAs(campion.VendorArista, path, string(data))
	}
	return nil, fmt.Errorf("unknown vendor %q", vendor)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "campion:", err)
	os.Exit(2)
}
