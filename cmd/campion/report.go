package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
)

// reportCmd is the `campion report RUN.jsonl` subcommand: it replays a
// flight-recorder journal into an offline analysis — per-phase time
// breakdown, slowest pairs, class-size skew, cache efficiency — and
// optionally exports the journal as a Chrome trace. The summary is a
// pure function of the journal, so the same file always renders the
// same bytes. A truncated journal (crashed or interrupted run) replays
// up to the moment it died and says so. Exit status: 0 rendered,
// 2 usage or read errors.
func reportCmd(args []string) int {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	top := fs.Int("top", 10, "number of slowest pairs to list")
	traceOut := fs.String("trace", "", "additionally export the journal as Chrome trace_event JSON to this file")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: campion report [flags] RUN.jsonl\n")
		fmt.Fprintf(os.Stderr, "Replay a -journal flight-recorder file into a run summary.\n")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return fatal(err)
	}
	defer f.Close()
	events, err := obs.ReadJournal(f)
	if err != nil {
		return fatal(fmt.Errorf("%s: %w", fs.Arg(0), err))
	}
	if len(events) == 0 {
		return fatal(fmt.Errorf("%s: empty journal", fs.Arg(0)))
	}
	hasHeader := false
	for _, e := range events {
		if e.Type == obs.EvRunStart {
			hasHeader = true
			break
		}
	}
	if !hasHeader {
		return fatal(fmt.Errorf("%s: no run header (%d events but no %q event) — is this a campion -journal file?",
			fs.Arg(0), len(events), obs.EvRunStart))
	}
	if *traceOut != "" {
		tf, err := os.Create(*traceOut)
		if err != nil {
			return fatal(err)
		}
		werr := obs.WriteJournalTrace(tf, events)
		if cerr := tf.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fatal(werr)
		}
		fmt.Fprintf(os.Stderr, "campion: wrote Chrome trace to %s\n", *traceOut)
	}
	if err := obs.AnalyzeJournal(events).WriteText(os.Stdout, *top); err != nil {
		return fatal(err)
	}
	return 0
}
