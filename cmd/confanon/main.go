// Command confanon anonymizes router configurations for confidential
// sharing (the paper itself anonymized the Table 7 addresses before
// publication). Addresses are rewritten with a prefix-preserving keyed
// permutation, so diffing a pair anonymized under the same key yields the
// same Campion differences as the originals; netmasks, wildcard masks,
// and prefix lengths are left verbatim.
//
// Usage:
//
//	confanon -key 12345 config.cfg > config.anon.cfg
//	confanon -key 12345 a.cfg b.cfg -outdir anon/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/anonymize"
)

func main() {
	key := flag.Uint64("key", 0, "anonymization key (same key ⇒ consistent mapping across files)")
	outdir := flag.String("outdir", "", "write <outdir>/<basename> per input instead of stdout")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: confanon -key N [-outdir DIR] CONFIG...")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if *key == 0 {
		fmt.Fprintln(os.Stderr, "confanon: a non-zero -key is required (keep it secret, reuse it for related files)")
		os.Exit(2)
	}
	a := anonymize.New(*key)
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		out := a.Text(string(data))
		if *outdir == "" {
			fmt.Print(out)
			continue
		}
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			fatal(err)
		}
		dst := filepath.Join(*outdir, filepath.Base(path))
		if err := os.WriteFile(dst, []byte(out), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", dst)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "confanon:", err)
	os.Exit(2)
}
