// Command fleetgen writes a synthetic router fleet to a directory: N
// devices stamped from a handful of templates, a configurable fraction
// carrying a unique mutation. It exists so benchmarks and CI smoke tests
// can generate a realistic -all workload (many equivalent devices, a few
// divergent ones) without checking thousands of files into the repo.
//
// Usage:
//
//	fleetgen -n 1000 -templates 8 -mutate 0.01 -seed 1 -out /tmp/fleet
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/testnets"
)

func main() {
	n := flag.Int("n", 100, "number of devices")
	templates := flag.Int("templates", 8, "number of distinct configuration templates")
	mutate := flag.Float64("mutate", 0.01, "fraction of devices carrying a unique mutation")
	seed := flag.Int64("seed", 1, "generator seed (same seed, same fleet)")
	out := flag.String("out", "", "output directory (created if needed; required)")
	flag.Parse()
	if *out == "" || *n < 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "fleetgen:", err)
		os.Exit(1)
	}
	members := testnets.Fleet(testnets.FleetParams{
		Devices: *n, Templates: *templates, MutationRate: *mutate, Seed: *seed,
	})
	if err := testnets.WriteFleetDir(*out, members); err != nil {
		fmt.Fprintln(os.Stderr, "fleetgen:", err)
		os.Exit(1)
	}
	fmt.Printf("fleetgen: %d devices, %d expected classes -> %s\n",
		len(members), testnets.ExpectedClasses(members), *out)
}
