// Command aclgen generates nearly-equivalent ACL pairs in Cisco and
// Juniper syntax, the synthetic workload of the paper's §5.4 scalability
// experiment (the role of Capirca in the original evaluation).
//
// Usage:
//
//	aclgen -rules 1000 -diffs 10 -seed 1 -out /tmp/acl
//
// writes /tmp/acl-cisco.cfg and /tmp/acl-juniper.cfg.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/aclgen"
)

func main() {
	rules := flag.Int("rules", 1000, "number of ACL rules")
	diffs := flag.Int("diffs", 10, "number of injected differences")
	seed := flag.Uint64("seed", 1, "generation seed")
	pools := flag.Int("pools", 32, "number of address pools")
	out := flag.String("out", "", "output file prefix (default: stdout)")
	flag.Parse()

	pair := aclgen.Generate(aclgen.Params{
		Seed: *seed, Rules: *rules, Pools: *pools, Differences: *diffs,
	})
	if *out == "" {
		fmt.Print(pair.CiscoText)
		fmt.Println("!--- juniper ---")
		fmt.Print(pair.JuniperText)
		return
	}
	if err := os.WriteFile(*out+"-cisco.cfg", []byte(pair.CiscoText), 0o644); err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out+"-juniper.cfg", []byte(pair.JuniperText), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s-cisco.cfg and %s-juniper.cfg (%d rules, %d injected differences)\n",
		*out, *out, *rules, len(pair.Injected))
	for _, d := range pair.Injected {
		fmt.Println("  injected:", d)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aclgen:", err)
	os.Exit(2)
}
