package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/cisco"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/juniper"
	"repro/internal/minesweeper"
	"repro/internal/netaddr"
	"repro/internal/present"
	"repro/internal/testnets"
)

// figure1a / figure1b are the configurations of the paper's Figure 1.
const figure1a = `hostname cisco_router
ip prefix-list NETS permit 10.9.0.0/16 le 32
ip prefix-list NETS permit 10.100.0.0/16 le 32
!
ip community-list standard COMM permit 10:10
ip community-list standard COMM permit 10:11
!
route-map POL deny 10
 match ip address NETS
route-map POL deny 20
 match community COMM
route-map POL permit 30
 set local-preference 30
`

const figure1b = `system { host-name juniper_router; }
policy-options {
    prefix-list NETS {
        10.9.0.0/16;
        10.100.0.0/16;
    }
    community COMM members [ 10:10 10:11 ];
    policy-statement POL {
        term rule1 {
            from prefix-list NETS;
            then reject;
        }
        term rule2 {
            from community COMM;
            then reject;
        }
        term rule3 {
            then {
                local-preference 30;
                accept;
            }
        }
    }
}
`

func parseFigure1() (*ir.Config, *ir.Config, error) {
	c, err := cisco.Parse("cisco.cfg", figure1a)
	if err != nil {
		return nil, nil, err
	}
	j, err := juniper.Parse("juniper.cfg", figure1b)
	if err != nil {
		return nil, nil, err
	}
	return c, j, nil
}

func table1(*ctx) error {
	t := &tabular{}
	row(t, "Feature", "Check Used (paper)", "Check Used (this impl)")
	paper := map[core.Component]string{
		core.ComponentACLs:      "SemanticDiff",
		core.ComponentRouteMaps: "SemanticDiff",
		core.ComponentStatic:    "StructuralDiff",
		core.ComponentConnected: "StructuralDiff",
		core.ComponentBGP:       "StructuralDiff",
		core.ComponentOSPF:      "StructuralDiff",
		core.ComponentAdmin:     "StructuralDiff",
	}
	for _, c := range core.AllComponents {
		row(t, string(c), paper[c], core.CheckKind(c))
	}
	t.print()
	return nil
}

func table2(*ctx) error {
	c, j, err := parseFigure1()
	if err != nil {
		return err
	}
	rep, err := core.Diff(c, j, core.Options{Components: []core.Component{core.ComponentRouteMaps}})
	if err != nil {
		return err
	}
	fmt.Printf("paper: 2 differences; measured: %d differences\n\n", len(rep.RouteMapDiffs))
	return present.Format(os.Stdout, rep)
}

func table3(*ctx) error {
	c, j, err := parseFigure1()
	if err != nil {
		return err
	}
	ch, err := minesweeper.NewRouteMapChecker(c, c.RouteMaps["POL"], j, j.RouteMaps["POL"])
	if err != nil {
		return err
	}
	cex, ok := ch.NextCounterexample()
	if !ok {
		return fmt.Errorf("no counterexample")
	}
	t := &tabular{}
	row(t, "Route received (Cisco)", "Prefix: "+cex.Route.Prefix.String())
	row(t, "Route received (Juniper)", "Prefix: "+cex.Route.Prefix.String())
	if comms := cex.Route.CommunityStrings(); len(comms) > 0 {
		row(t, "Communities", fmt.Sprint(comms))
	}
	row(t, "Cisco action", cex.Result1.Action.String())
	row(t, "Juniper action", cex.Result2.Action.String())
	t.print()

	// The paper's table also shows the forwarding consequence: feed the
	// paper's 10.9.0.0/17 advertisement through both whole routers.
	advert := ir.NewRoute(netaddr.MustParsePrefix("10.9.0.0/17"))
	advert.NextHop = netaddr.MustParseAddr("198.18.0.1")
	fcex, ok := minesweeper.FullRouterCounterexample(c, j,
		[]string{"POL"}, []string{"POL"}, []*ir.Route{advert})
	if ok {
		fmt.Println()
		t2 := &tabular{}
		row(t2, "Packet", "dstIp: "+fcex.DstIP.String())
		fwd := func(f bool, p ir.Protocol) string {
			if f {
				return "forwards (" + p.String() + ")"
			}
			return "does not forward"
		}
		row(t2, "Cisco", fwd(fcex.Forward1, fcex.Proto1))
		row(t2, "Juniper", fwd(fcex.Forward2, fcex.Proto2))
		t2.print()
	}
	fmt.Println("\npaper: Juniper forwards (BGP), Cisco does not; one concrete example,")
	fmt.Println("no header or text localization.")
	return nil
}

const staticCiscoExample = `hostname cisco_router
ip route 10.1.1.2 255.255.255.254 10.2.2.2
`

const staticJuniperExample = `system { host-name juniper_router; }
routing-options { static { } }
`

func table4(*ctx) error {
	c, err := cisco.Parse("cisco.cfg", staticCiscoExample)
	if err != nil {
		return err
	}
	j, err := juniper.Parse("juniper.cfg", staticJuniperExample)
	if err != nil {
		return err
	}
	rep, err := core.Diff(c, j, core.Options{Components: []core.Component{core.ComponentStatic}})
	if err != nil {
		return err
	}
	return present.Format(os.Stdout, rep)
}

func table5(*ctx) error {
	c, err := cisco.Parse("cisco.cfg", staticCiscoExample)
	if err != nil {
		return err
	}
	j, err := juniper.Parse("juniper.cfg", staticJuniperExample)
	if err != nil {
		return err
	}
	cex, ok := minesweeper.StaticForwardingCounterexample(c, j)
	if !ok {
		return fmt.Errorf("no counterexample")
	}
	t := &tabular{}
	row(t, "Packet", "dstIp: "+cex.DstIP.String())
	row(t, "Cisco forwards", fmt.Sprint(cex.Forward1))
	row(t, "Juniper forwards", fmt.Sprint(cex.Forward2))
	t.print()
	fmt.Println("\n(the baseline does not identify the static route or its line)")
	return nil
}

func table6(*ctx) error {
	t := &tabular{}
	row(t, "Scenario", "Component", "Check", "Paper", "Measured")

	// Scenario 1: redundant ToR pairs.
	var bgp1 int
	staticBugs := map[string]bool{}
	for _, p := range testnets.DatacenterToRPairs() {
		rep, err := core.Diff(p.Config1, p.Config2, core.Options{})
		if err != nil {
			return err
		}
		bgp1 += len(rep.RouteMapDiffs)
		for _, d := range rep.Structural {
			if d.Component == "static-route" {
				staticBugs[p.Name+"/"+d.Key] = true
			}
		}
	}
	row(t, "Scenario 1", "BGP", "Semantic", "5", fmt.Sprint(bgp1))
	row(t, "Scenario 1", "Static Routes", "Structural", "2", fmt.Sprint(len(staticBugs)))

	// Scenario 2: router replacement.
	p2 := testnets.DatacenterReplacement()
	rep2, err := core.Diff(p2.Config1, p2.Config2, core.Options{})
	if err != nil {
		return err
	}
	row(t, "Scenario 2", "BGP", "Semantic", "4", fmt.Sprint(len(rep2.RouteMapDiffs)))

	// Scenario 3: gateway ACLs.
	p3 := testnets.DatacenterGateway()
	rep3, err := core.Diff(p3.Config1, p3.Config2, core.Options{})
	if err != nil {
		return err
	}
	row(t, "Scenario 3", "ACLs", "Semantic", "3", fmt.Sprint(len(rep3.ACLDiffs)))
	t.print()
	return nil
}

func table7(*ctx) error {
	p := testnets.DatacenterGateway()
	rep, err := core.Diff(p.Config1, p.Config2, core.Options{Components: []core.Component{core.ComponentACLs}})
	if err != nil {
		return err
	}
	// Present only the Table 7 featured difference (source 9.140.0.0/23).
	featured := *rep
	featured.ACLDiffs = nil
	for _, d := range rep.ACLDiffs {
		for _, term := range d.Localization.SrcTerms {
			if term.Include.Prefix == netaddr.MustParsePrefix("9.140.0.0/23") {
				featured.ACLDiffs = append(featured.ACLDiffs, d)
			}
		}
	}
	fmt.Printf("paper: REJECT (cisco line 2299) vs ACCEPT (juniper term), src 9.140.0.0/23\n\n")
	return present.Format(os.Stdout, &featured)
}

func table8(*ctx) error {
	t := &tabular{}
	row(t, "Router Pair", "Route Map", "Paper", "Measured")
	countPair := func(p testnets.Pair) (map[string]int, *core.Report, error) {
		rep, err := core.Diff(p.Config1, p.Config2, core.Options{})
		if err != nil {
			return nil, nil, err
		}
		counts := map[string]int{}
		for _, d := range rep.RouteMapDiffs {
			counts[d.Pair.Name1]++
		}
		return counts, rep, nil
	}
	coreCounts, coreRep, err := countPair(testnets.UniversityCore())
	if err != nil {
		return err
	}
	borderCounts, borderRep, err := countPair(testnets.UniversityBorder())
	if err != nil {
		return err
	}
	row(t, "Core Routers", "Export 1 (EXPORT1)", "5", fmt.Sprint(coreCounts["EXPORT1"]))
	row(t, "Core Routers", "Export 2 (EXPORT2)", "1", fmt.Sprint(coreCounts["EXPORT2"]))
	row(t, "Border Routers", "Export 3 (EXPORT3)", "1", fmt.Sprint(borderCounts["EXPORT3"]))
	row(t, "Border Routers", "Export 4 (EXPORT4)", "1", fmt.Sprint(borderCounts["EXPORT4"]))
	row(t, "Border Routers", "Export 5 (EXPORT5)", "2", fmt.Sprint(borderCounts["EXPORT5"]))
	row(t, "Border Routers", "Import", "0", fmt.Sprint(borderCounts["IMPORT-DEFAULT"]))
	t.print()

	fmt.Println()
	t2 := &tabular{}
	row(t2, "Router Pair", "Component", "Paper (classes)", "Measured (classes)")
	staticPrefixes := map[string]string{}
	var bgpProps int
	for _, d := range coreRep.Structural {
		switch d.Component {
		case "static-route":
			staticPrefixes[d.Key] = d.Field
		case "bgp-neighbor":
			bgpProps++
		}
	}
	classSet := map[string]bool{}
	for _, f := range staticPrefixes {
		classSet[f] = true
	}
	row(t2, "Core Routers", "Static Routes", "2", fmt.Sprint(len(classSet)))
	bgpClasses := 0
	if bgpProps > 0 {
		bgpClasses = 1 // all send-community
	}
	row(t2, "Core Routers", "BGP Properties", "1", fmt.Sprint(bgpClasses))
	t2.print()
	_ = borderRep
	return nil
}

func runtime(*ctx) error {
	t := &tabular{}
	row(t, "Pair", "Lines", "Paper", "Measured (diff)", "Measured (parse+diff)")
	basePairs := []testnets.Pair{
		testnets.UniversityCore(), testnets.UniversityBorder(),
		testnets.DatacenterReplacement(), testnets.DatacenterGateway(),
	}
	basePairs = append(basePairs, testnets.DatacenterToRPairs()...)
	total := time.Duration(0)
	for _, base := range basePairs {
		// Scale each pair to the paper's configuration sizes (300 to
		// thousands of lines) with behaviorally neutral filler.
		parseStart := time.Now()
		p := testnets.Scaled(base, 150, 200)
		parseTime := time.Since(parseStart)
		l1, l2 := p.LineCount()
		start := time.Now()
		if _, err := core.Diff(p.Config1, p.Config2, core.Options{}); err != nil {
			return err
		}
		d := time.Since(start)
		total += d + parseTime
		row(t, base.Name, fmt.Sprintf("%d/%d", l1, l2), "< 5 s",
			d.Round(time.Millisecond).String(),
			(d + parseTime).Round(time.Millisecond).String())
	}
	row(t, "all pairs", "", "< 10 s incl. parsing", "", total.Round(time.Millisecond).String())
	t.print()
	fmt.Println("\n(parse time includes generating and parsing the filler; the paper")
	fmt.Println("reports parsing dominating its end-to-end time as well)")
	return nil
}
