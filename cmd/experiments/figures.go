package main

import (
	"fmt"
	"time"

	"repro/internal/aclgen"
	"repro/internal/cisco"
	"repro/internal/ddnf"
	"repro/internal/ir"
	"repro/internal/juniper"
	"repro/internal/minesweeper"
	"repro/internal/netaddr"
	"repro/internal/semdiff"
	"repro/internal/srp"
	"repro/internal/symbolic"
)

// figure2 prints the equivalence classes SemanticDiff's first step
// computes for the Figure 1(a) route map — the partition of Figure 2.
func figure2(*ctx) error {
	c, j, err := parseFigure1()
	if err != nil {
		return err
	}
	enc := symbolic.NewRouteEncoding(c, j)
	paths, err := enc.EnumeratePaths(c, c.RouteMaps["POL"])
	if err != nil {
		return err
	}
	fmt.Printf("paper: 3 classes (NETS′; ¬NETS′∧COMM′; remainder); measured: %d classes\n\n", len(paths))
	t := &tabular{}
	row(t, "Class", "Action", "Deciding clause", "Example route")
	for i, p := range paths {
		action := "REJECT"
		if p.Accept {
			action = "ACCEPT"
			if !p.Transform.IsIdentity() {
				action += " + " + p.Transform.String()
			}
		}
		clause := "(default)"
		if p.Terminal != nil {
			clause = fmt.Sprintf("seq %d", p.Terminal.Seq)
		}
		example := "-"
		if a := enc.F.AnySat(p.Guard); a != nil {
			example = enc.RouteFromAssignment(a).String()
		}
		row(t, fmt.Sprintf("λ%d", i+1), action, clause, example)
	}
	t.print()
	return nil
}

// figure3 reconstructs the paper's Figure 3: the seven-range DAG, and the
// GetMatch walk that represents S = (B−D) ∪ (C−F) ∪ G as {B−D, C−(F−G)},
// simplified to {B−D, C−F, G}.
func figure3(*ctx) error {
	ranges := map[string]netaddr.PrefixRange{
		"A": netaddr.Universe,
		"B": netaddr.MustParsePrefixRange("10.0.0.0/8 : 8-32"),
		"C": netaddr.MustParsePrefixRange("20.0.0.0/8 : 8-32"),
		"D": netaddr.MustParsePrefixRange("10.1.0.0/16 : 16-32"),
		"E": netaddr.MustParsePrefixRange("10.2.0.0/16 : 16-32"),
		"F": netaddr.MustParsePrefixRange("20.1.0.0/16 : 16-32"),
		"G": netaddr.MustParsePrefixRange("20.1.1.0/24 : 24-32"),
	}
	nameOf := func(r netaddr.PrefixRange) string {
		for n, x := range ranges {
			if x.Equal(r) {
				return n
			}
		}
		return r.String()
	}
	d := ddnf.Build([]netaddr.PrefixRange{
		ranges["B"], ranges["C"], ranges["D"], ranges["E"], ranges["F"], ranges["G"],
	})
	fmt.Println("DAG edges (immediate containment):")
	for _, n := range d.Nodes {
		for _, c := range n.Children {
			fmt.Printf("  %s -> %s\n", nameOf(n.Range), nameOf(c.Range))
		}
	}
	enc := symbolic.NewRouteEncoding()
	ops := ddnf.SetOps{F: enc.F, RangeBDD: enc.PrefixRangeBDD, Universe: enc.WellFormed}
	s := enc.F.OrN(
		enc.F.Diff(enc.F.And(ops.RangeBDD(ranges["B"]), ops.Universe), ops.RangeBDD(ranges["D"])),
		enc.F.Diff(enc.F.And(ops.RangeBDD(ranges["C"]), ops.Universe), ops.RangeBDD(ranges["F"])),
		enc.F.And(ops.RangeBDD(ranges["G"]), ops.Universe),
	)
	terms, exact := d.GetMatch(ops, s)
	fmt.Printf("\nGetMatch(S = (B−D) ∪ (C−F) ∪ G):  exact=%v\n", exact)
	var render func(t ddnf.Term) string
	render = func(t ddnf.Term) string {
		out := nameOf(t.Include)
		for _, x := range t.Exclude {
			out += " − (" + render(x) + ")"
		}
		return out
	}
	for _, t := range terms {
		fmt.Printf("  raw term: %s\n", render(t))
	}
	fmt.Println("paper raw result:  B − D,  C − (F − G)")
	fmt.Println()
	for _, ft := range ddnf.Simplify(terms) {
		out := nameOf(ft.Include)
		for _, x := range ft.Exclude {
			out += " − " + nameOf(x)
		}
		fmt.Printf("  simplified: %s\n", out)
	}
	fmt.Println("paper simplified:  {B − D, C − F, G}")
	return nil
}

// figure4 prints the paper's Figure 4 flow — the routing and forwarding
// components of a router — annotated with the module that models each
// configurable (brown) node and the fixed (blue) processes this
// repository simulates rather than models.
func figure4(*ctx) error {
	t := &tabular{}
	row(t, "Figure 4 node", "Kind", "Module / check")
	row(t, "BGP import filters (per neighbor)", "configured", "internal/semdiff on route maps (SemanticDiff)")
	row(t, "BGP export filters (per neighbor)", "configured", "internal/semdiff on route maps (SemanticDiff)")
	row(t, "BGP properties (RR client, communities, ...)", "configured", "internal/structdiff (StructuralDiff)")
	row(t, "Route redistribution", "configured", "internal/semdiff via matched redistribution policies")
	row(t, "OSPF link costs / areas / timers", "configured", "internal/structdiff (StructuralDiff)")
	row(t, "Static routes", "configured", "internal/structdiff (StructuralDiff)")
	row(t, "Connected routes", "configured", "internal/structdiff (StructuralDiff)")
	row(t, "Administrative distances", "configured", "internal/structdiff (StructuralDiff)")
	row(t, "ACLs (data plane filters)", "configured", "internal/semdiff on ACLs (SemanticDiff)")
	row(t, "BGP decision process", "fixed", "not modeled (Theorem 3.3); simulated by internal/srp")
	row(t, "OSPF shortest paths", "fixed", "not modeled; simulated by internal/srp")
	row(t, "Route selection (RIB)", "fixed", "not modeled; simulated by internal/fib")
	row(t, "Longest-prefix forwarding (FIB)", "fixed", "not modeled; simulated by internal/fib")
	t.print()
	fmt.Println("\nCampion compares only the configured nodes; the fixed processes are")
	fmt.Println("identical standard algorithms on both routers, which is exactly why the")
	fmt.Println("modular check is protocol-free (Theorem 3.3, validated by -run theorem).")
	return nil
}

// theorem validates Theorem 3.3 on the Figure 1 policies: the correctly
// translated pair yields identical routing solutions; the buggy pair
// diverges exactly on the advertisements Campion localizes.
func theorem(*ctx) error {
	c, jBuggy, err := parseFigure1()
	if err != nil {
		return err
	}
	fixed := `policy-options {
    community C10 members 10:10;
    community C11 members 10:11;
    policy-statement POL {
        term rule1 {
            from {
                route-filter 10.9.0.0/16 orlonger;
                route-filter 10.100.0.0/16 orlonger;
            }
            then reject;
        }
        term rule2 { from community [ C10 C11 ]; then reject; }
        term rule3 { then { local-preference 30; accept; } }
    }
}
`
	jFixed, err := juniper.Parse("fixed.cfg", fixed)
	if err != nil {
		return err
	}

	adverts := []*ir.Route{
		ir.NewRoute(netaddr.MustParsePrefix("10.9.1.0/24")),
		ir.NewRoute(netaddr.MustParsePrefix("192.0.2.0/24")),
		ir.NewRoute(netaddr.MustParsePrefix("10.9.0.0/16")),
		ir.NewRoute(netaddr.MustParsePrefix("203.0.113.0/24")),
	}
	adverts[3].Communities["10:10"] = true
	for _, r := range adverts {
		r.ASPath = []int64{65002}
	}
	network := func(mid *ir.Config) *srp.BGPNetwork {
		return &srp.BGPNetwork{
			Nodes: 3,
			Sessions: []srp.BGPSession{
				{Edge: srp.Edge{From: 0, To: 1}, FromASN: 65002, ToASN: 65001,
					ImportConfig: mid, Import: []string{"POL"}},
				{Edge: srp.Edge{From: 1, To: 2}, FromASN: 65001, ToASN: 65001},
			},
		}
	}
	solve := func(mid *ir.Config) (*srp.Solution, error) {
		sol, ok := network(mid).NewBGPProblem(0, adverts).Solve()
		if !ok {
			return nil, fmt.Errorf("no convergence")
		}
		return sol, nil
	}
	cSol, err := solve(c)
	if err != nil {
		return err
	}
	fixedSol, err := solve(jFixed)
	if err != nil {
		return err
	}
	buggySol, err := solve(jBuggy)
	if err != nil {
		return err
	}
	t := &tabular{}
	row(t, "Network pair", "Campion diffs", "Same routing solutions?")
	row(t, "cisco vs fixed juniper", "0", fmt.Sprint(cSol.Equal(fixedSol)))
	row(t, "cisco vs buggy juniper (Figure 1)", "2", fmt.Sprint(cSol.Equal(buggySol)))
	t.print()
	fmt.Println("\nper-advertisement routes at the observer node:")
	t2 := &tabular{}
	row(t2, "Advertisement", "cisco network", "buggy juniper network")
	for _, r := range adverts {
		has := func(s *srp.Solution) string {
			if s.Selected[2][r.Prefix] != nil {
				return "learned"
			}
			return "dropped"
		}
		label := r.Prefix.String()
		if len(r.CommunityStrings()) > 0 {
			label += " (comm " + r.CommunityStrings()[0] + ")"
		}
		row(t2, label, has(cSol), has(buggySol))
	}
	t2.print()
	return nil
}

// fragility reruns the §2 experiment: how many concrete counterexamples
// the iterated baseline needs before every prefix range relevant to
// Difference 1 is witnessed, for the original config and for the "le 31"
// variant.
func fragility(*ctx) error {
	run := func(ciscoText string) (int, bool, error) {
		c, err := cisco.Parse("c.cfg", ciscoText)
		if err != nil {
			return 0, false, err
		}
		j, err := juniper.Parse("j.cfg", figure1b)
		if err != nil {
			return 0, false, err
		}
		ch, err := minesweeper.NewRouteMapChecker(c, c.RouteMaps["POL"], j, j.RouteMaps["POL"])
		if err != nil {
			return 0, false, err
		}
		targets := []func(*ir.Route) bool{
			func(r *ir.Route) bool {
				return netaddr.MustParsePrefixRange("10.9.0.0/16 : 17-32").ContainsPrefix(r.Prefix)
			},
			func(r *ir.Route) bool {
				return netaddr.MustParsePrefixRange("10.100.0.0/16 : 17-32").ContainsPrefix(r.Prefix)
			},
		}
		n, covered := ch.CountUntilCovered(targets, 2000)
		return n, covered, nil
	}
	n1, ok1, err := run(figure1a)
	if err != nil {
		return err
	}
	variant := figure1a
	variant = replaceOnce(variant, "ip prefix-list NETS permit 10.100.0.0/16 le 32",
		"ip prefix-list NETS permit 10.100.0.0/16 le 31")
	n2, ok2, err := run(variant)
	if err != nil {
		return err
	}
	t := &tabular{}
	row(t, "Configuration", "Paper", "Measured", "Covered")
	row(t, "Figure 1 (le 32)", "7", fmt.Sprint(n1), fmt.Sprint(ok1))
	row(t, "le 32 -> le 31 variant", "27", fmt.Sprint(n2), fmt.Sprint(ok2))
	t.print()
	fmt.Println("\nCampion reports both differences completely in one run (2 localized classes).")
	return nil
}

func replaceOnce(s, old, new string) string {
	for i := 0; i+len(old) <= len(s); i++ {
		if s[i:i+len(old)] == old {
			return s[:i] + new + s[i+len(old):]
		}
	}
	return s
}

// scalability reruns §5.4: SemanticDiff over generated nearly-equivalent
// ACL pairs with 10 injected differences, at increasing rule counts,
// reporting parse and diff times.
func scalability(c *ctx) error {
	sizes := []int{100, 1000, 10000}
	if c.quick {
		sizes = []int{100, 1000}
	}
	t := &tabular{}
	row(t, "Rules", "Paper diff time", "Measured diff", "Measured parse", "Diff classes")
	paper := map[int]string{100: "-", 1000: "< 1 s", 10000: "~15 s (2.2 GHz)"}
	for _, n := range sizes {
		pair := aclgen.Generate(aclgen.Params{Seed: 1, Rules: n, Differences: 10})

		parseStart := time.Now()
		ccfg, err := cisco.Parse("c.cfg", pair.CiscoText)
		if err != nil {
			return err
		}
		jcfg, err := juniper.Parse("j.cfg", pair.JuniperText)
		if err != nil {
			return err
		}
		parseTime := time.Since(parseStart)

		diffStart := time.Now()
		enc := symbolic.NewPacketEncoding()
		diffs := semdiff.DiffACLs(enc, ccfg.ACLs[pair.Name], jcfg.ACLs[pair.Name])
		diffTime := time.Since(diffStart)

		row(t, fmt.Sprint(n), paper[n],
			diffTime.Round(time.Millisecond).String(),
			parseTime.Round(time.Millisecond).String(),
			fmt.Sprint(len(diffs)))
	}
	t.print()
	fmt.Println("\n(10 injected differences per pair, as in the paper)")
	return nil
}
