package main

import (
	"testing"
)

// TestAllExperimentsRun executes every experiment (quick mode) and fails
// on any error — the regression net for the evaluation harness itself.
func TestAllExperimentsRun(t *testing.T) {
	c := &ctx{quick: true}
	for _, e := range experiments {
		e := e
		t.Run(e.name, func(t *testing.T) {
			if err := e.run(c); err != nil {
				t.Fatalf("%s failed: %v", e.name, err)
			}
		})
	}
}

func TestKnown(t *testing.T) {
	if !known("table2") || known("bogus") {
		t.Error("known() misbehaves")
	}
}

func TestTabular(t *testing.T) {
	tab := &tabular{}
	row(tab, "a", "bb")
	row(tab, "ccc", "d")
	tab.print() // visual only; must not panic
	if pad("x", 3) != "x  " {
		t.Error("pad")
	}
	if len(sortedKeys(map[string]int{"b": 1, "a": 2})) != 2 {
		t.Error("sortedKeys")
	}
	empty := &tabular{}
	empty.print()
}

func TestReplaceOnce(t *testing.T) {
	if replaceOnce("aXbXc", "X", "Y") != "aYbXc" {
		t.Error("replaceOnce should replace only the first occurrence")
	}
	if replaceOnce("abc", "Z", "Y") != "abc" {
		t.Error("no-op when absent")
	}
}
