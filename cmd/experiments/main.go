// Command experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index), printing the
// paper-reported values next to the measured ones. Absolute timings
// differ from the paper's 2.2 GHz testbed; the shapes are the claim.
//
// Usage:
//
//	experiments              # run everything
//	experiments -run table2  # one experiment
//	experiments -run table6,table8
//	experiments -quick       # skip the 10k-rule scalability point
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

type experiment struct {
	name  string
	title string
	run   func(*ctx) error
}

type ctx struct {
	quick bool
}

var experiments = []experiment{
	{"table1", "Table 1: components and the check used for each", table1},
	{"table2", "Table 2: Campion on the Figure 1 route maps", table2},
	{"table3", "Table 3: Minesweeper baseline on the Figure 1 route maps", table3},
	{"table4", "Table 4: Campion on the static route example", table4},
	{"table5", "Table 5: Minesweeper baseline on the static route example", table5},
	{"table6", "Table 6: data center network results", table6},
	{"table7", "Table 7: gateway ACL debugging example", table7},
	{"table8", "Table 8: university network results", table8},
	{"figure2", "Figure 2: equivalence classes of the Figure 1(a) route map", figure2},
	{"figure3", "Figure 3: ddNF DAG and GetMatch walk-through", figure3},
	{"figure4", "Figure 4: routing/forwarding components and their modules", figure4},
	{"theorem", "Theorem 3.3: locally equivalent networks route identically", theorem},
	{"fragility", "§2: counterexamples needed by the iterated baseline", fragility},
	{"scalability", "§5.4: SemanticDiff scalability on generated ACLs", scalability},
	{"runtime", "§5.4: end-to-end runtime per router pair", runtime},
}

func main() {
	run := flag.String("run", "", "comma-separated experiment names (default: all)")
	quick := flag.Bool("quick", false, "skip the slowest scalability points")
	list := flag.Bool("list", false, "list experiment names")
	flag.Parse()

	if *list {
		for _, e := range experiments {
			fmt.Printf("%-12s %s\n", e.name, e.title)
		}
		return
	}
	selected := map[string]bool{}
	if *run != "" {
		for _, n := range strings.Split(*run, ",") {
			selected[strings.TrimSpace(n)] = true
		}
		for n := range selected {
			if !known(n) {
				fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", n)
				os.Exit(2)
			}
		}
	}
	c := &ctx{quick: *quick}
	failed := 0
	for _, e := range experiments {
		if len(selected) > 0 && !selected[e.name] {
			continue
		}
		fmt.Printf("==================================================================\n")
		fmt.Printf("%s — %s\n", e.name, e.title)
		fmt.Printf("==================================================================\n")
		if err := e.run(c); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s failed: %v\n", e.name, err)
			failed++
		}
		fmt.Println()
	}
	if failed > 0 {
		os.Exit(1)
	}
}

func known(name string) bool {
	for _, e := range experiments {
		if e.name == name {
			return true
		}
	}
	return false
}

// row prints an aligned paper-vs-measured table row.
func row(w *tabular, cols ...string) { w.add(cols) }

type tabular struct {
	rows [][]string
}

func (t *tabular) add(cols []string) { t.rows = append(t.rows, cols) }

func (t *tabular) print() {
	if len(t.rows) == 0 {
		return
	}
	widths := make([]int, len(t.rows[0]))
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for _, r := range t.rows {
		var parts []string
		for i, c := range r {
			parts = append(parts, pad(c, widths[i]))
		}
		fmt.Println("  " + strings.Join(parts, "  "))
	}
}

func pad(s string, n int) string {
	for len(s) < n {
		s += " "
	}
	return s
}

func sortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
